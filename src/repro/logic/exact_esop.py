"""Exact (minimum-cube) ESOP synthesis for small functions via SAT.

PSDKRO extraction (:func:`repro.logic.esop.psdkro_cubes`) is fast but only
heuristically small.  For the ≤4-input functions the LUT flows actually
synthesise, the minimum-cube ESOP problem is tiny enough to solve exactly:
"is there an ESOP of ``m`` mixed-polarity cubes equal to this truth
table?" becomes a CNF over per-cube literal-selector variables, and
iterative deepening on ``m`` finds the optimum.

Encoding, for a candidate cover of ``m`` cubes over ``n`` inputs:

* selector variables ``pos[j][x]`` / ``neg[j][x]`` — cube ``j`` contains
  the positive / negative literal of input ``x`` (not both),
* match variables ``t[j][a]`` for every input assignment ``a`` —
  ``t[j][a]`` holds iff cube ``j`` evaluates to 1 under ``a``, which is
  exactly "no selected literal of cube ``j`` disagrees with ``a``",
* a parity chain per assignment ties ``XOR_j t[j][a]`` to the truth-table
  bit of ``a``.

Minimising cubes alone can *raise* the T-count: a single 4-control
Toffoli (23 T under the ``rtof`` model) is dearer than the two 2-control
ones (14 T) it may replace.  So after deepening finds the minimum cube
count, a descent pass minimises the ``rtof`` T-cost of the cover across
every cube count up to the PSDKRO's — the per-cube cost is linearised
through unary "at least ``i`` literals" threshold variables weighted by
the model's marginal costs — and a final pass shaves leftover literals at
unchanged T-cost.  Every SAT call carries the remaining share of a
per-function time budget; on ``"unknown"`` the engine degrades to the
PSDKRO cover, so the result is never larger and never T-dearer than the
heuristic one.

Results are memoised by ``(num_vars, truth)`` — LUT flows resynthesise the
same small functions constantly — and the memo exposes hit/miss counters
so the cache path stays testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.logic.cube import Cube
from repro.logic.esop import psdkro_cubes
from repro.logic.truth_table import tt_mask
from repro.quantum.tcount import mct_t_count
from repro.sat import Cnf, solve

__all__ = [
    "DEFAULT_TIME_BUDGET",
    "MAX_EXACT_VARS",
    "exact_esop_cubes",
    "exact_esop_stats",
    "reset_exact_esop_memo",
]

#: Functions with more inputs than this always use the PSDKRO fallback —
#: the encoding grows with ``2^n`` match variables per cube.
MAX_EXACT_VARS = 4

#: Wall-clock seconds granted to one truth table (all deepening and
#: refinement calls together).
DEFAULT_TIME_BUDGET = 5.0

#: Conflict cap per T-cost-descent call: proving a cover cost-optimal can
#: dwarf finding it (improvements surface within a few hundred conflicts,
#: final refutations take thousands), and an interrupted proof just keeps
#: the best cover found so far (still never dearer than PSDKRO).
_DESCENT_CONFLICT_BUDGET = 1200

#: The cost descent searches covers of up to ``min_cubes + slack`` cubes:
#: cheaper-but-larger covers sit close to the minimum in practice, and
#: every extra slot inflates the encoding for all descent calls.
_DESCENT_SLOT_SLACK = 3

_memo: Dict[Tuple[int, int], List[Cube]] = {}
_stats = {"hits": 0, "misses": 0, "optimal": 0, "fallbacks": 0}


def exact_esop_stats() -> Dict[str, int]:
    """A snapshot of the memo/solver counters (for tests and reports)."""
    return dict(_stats)


def reset_exact_esop_memo() -> None:
    """Clear the memo and zero the counters (test isolation)."""
    _memo.clear()
    for key in _stats:
        _stats[key] = 0


def _build_cover_cnf(
    truth: int, num_vars: int, num_cubes: int, activation: bool = False
) -> Tuple[Cnf, List[List[Tuple[int, int]]], Optional[List[int]]]:
    """CNF asserting "some ``num_cubes``-cube ESOP equals ``truth``".

    Returns the formula, per-cube ``(pos, neg)`` selector variable pairs
    per input (enough to read a cover back out of a model), and — with
    ``activation=True`` — one activation variable per cube slot.  An
    inactive slot contributes nothing: its selectors are forced off and it
    matches no assignment, so one encoding over ``num_cubes`` slots covers
    every cube count up to ``num_cubes`` at once (slots are packed to the
    front to break the slot-permutation symmetry).
    """
    cnf = Cnf()
    selectors: List[List[Tuple[int, int]]] = []
    active: Optional[List[int]] = [] if activation else None
    for _ in range(num_cubes):
        if activation:
            active.append(cnf.new_var())
        cube_selectors = []
        for _ in range(num_vars):
            pos, neg = cnf.new_var(), cnf.new_var()
            cnf.add_clause([-pos, -neg])
            if activation:
                cnf.add_clause([-pos, active[-1]])
                cnf.add_clause([-neg, active[-1]])
            cube_selectors.append((pos, neg))
        selectors.append(cube_selectors)
    if activation:
        for gap, packed in zip(active[1:], active):
            cnf.add_clause([-gap, packed])

    for assignment in range(1 << num_vars):
        bit = (truth >> assignment) & 1
        parity_head: Optional[int] = None
        for j in range(num_cubes):
            match = cnf.new_var()
            # A selected literal disagreeing with the assignment blocks
            # the match; with no blocker the (active) cube covers the
            # assignment.
            blockers = []
            for x, (pos, neg) in enumerate(selectors[j]):
                blocker = neg if (assignment >> x) & 1 else pos
                blockers.append(blocker)
                cnf.add_clause([-match, -blocker])
            if activation:
                cnf.add_clause([-match, active[j]])
                cnf.add_clause([match, -active[j]] + blockers)
            else:
                cnf.add_clause([match] + blockers)
            if parity_head is None:
                parity_head = match
            else:
                chained = cnf.new_var()
                cnf.xor_link(chained, parity_head, match)
                parity_head = chained
        if parity_head is None:  # num_cubes == 0: covers only truth == 0
            if bit:
                cnf.add_clause([])
        else:
            cnf.add_clause([parity_head if bit else -parity_head])
    return cnf, selectors, active


def _cover_from_model(
    model, selectors, num_vars: int, active: Optional[List[int]] = None
) -> List[Cube]:
    cubes = []
    for j, cube_selectors in enumerate(selectors):
        if active is not None and not model[active[j]]:
            continue
        literals = []
        for x, (pos, neg) in enumerate(cube_selectors):
            if model[pos]:
                literals.append((x, True))
            elif model[neg]:
                literals.append((x, False))
        cubes.append(Cube.from_literals(num_vars, literals))
    return cubes


def _cover_truth(cubes: List[Cube]) -> int:
    truth = 0
    for cube in cubes:
        truth ^= cube.truth_table()
    return truth


def _total_literals(cubes: List[Cube]) -> int:
    return sum(cube.num_literals() for cube in cubes)


def _cover_cost(cubes: List[Cube]) -> int:
    """The ``rtof`` T-cost of one Toffoli per cube."""
    return sum(mct_t_count(cube.num_literals()) for cube in cubes)


def _cost_literals(
    cnf: Cnf, selectors: List[List[Tuple[int, int]]]
) -> List[int]:
    """Weighted literals whose count equals the cover's ``rtof`` T-cost.

    Per cube: an indicator per input ("some literal of this input is
    selected") and one threshold variable per control count ``i >= 2``
    ("the cube has at least ``i`` literals"), forced true by every
    ``i``-subset of indicators.  Repeating each threshold by the model's
    marginal cost ``T(i) - T(i - 1)`` makes a plain cardinality bound over
    the result a T-cost bound.
    """
    from itertools import combinations

    weighted: List[int] = []
    for cube_selectors in selectors:
        used = []
        for pos, neg in cube_selectors:
            indicator = cnf.new_var()
            cnf.add_clause([-pos, indicator])
            cnf.add_clause([-neg, indicator])
            used.append(indicator)
        for count in range(2, len(used) + 1):
            marginal = mct_t_count(count) - mct_t_count(count - 1)
            if marginal == 0:
                continue
            threshold = cnf.new_var()
            for subset in combinations(used, count):
                cnf.add_clause([-u for u in subset] + [threshold])
            weighted.extend([threshold] * marginal)
    return weighted


def exact_esop_cubes(
    truth: int,
    num_vars: int,
    time_budget: float = DEFAULT_TIME_BUDGET,
) -> List[Cube]:
    """A T-cost-minimal ESOP cover of ``truth``, PSDKRO on fallback.

    For functions of at most :data:`MAX_EXACT_VARS` inputs, iterative
    deepening on the cube count finds the provably minimum count within
    ``time_budget`` seconds; a descent pass then minimises the ``rtof``
    T-cost of the cover over every cube count up to the PSDKRO's, and a
    final pass shaves leftover literals at unchanged cost.  On budget
    exhaustion (or more inputs) the PSDKRO cover is returned, so the
    result is never larger — and, once solved, never T-dearer — than the
    heuristic block it replaces.
    """
    import time

    truth &= tt_mask(num_vars)
    key = (num_vars, truth)
    cached = _memo.get(key)
    if cached is not None:
        _stats["hits"] += 1
        return list(cached)
    _stats["misses"] += 1

    baseline = psdkro_cubes(truth, num_vars)
    if num_vars > MAX_EXACT_VARS or truth == 0:
        _memo[key] = list(baseline)
        return list(baseline)

    deadline = time.monotonic() + time_budget
    best: Optional[List[Cube]] = None
    complete = True

    # Deepen on the cube count; PSDKRO is an upper bound, so only strictly
    # smaller covers are worth solving for.
    for num_cubes in range(1, len(baseline)):
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            complete = False
            break
        cnf, selectors, _ = _build_cover_cnf(truth, num_vars, num_cubes)
        result = solve(cnf, time_budget=remaining)
        if result.status == "sat":
            best = _cover_from_model(result.model, selectors, num_vars)
            break
        if result.status == "unknown":
            complete = False
            break

    if best is None:
        if not complete:
            # The budget ran dry before any smaller cover was found or
            # refuted; the heuristic cover is all we can promise.
            _stats["fallbacks"] += 1
            _memo[key] = list(baseline)
            return list(baseline)
        # PSDKRO is provably cube-optimal; the cost descent below may
        # still swap cubes for cheaper ones at the same count.
        best = list(baseline)

    # T-cost descent: the minimum-cube cover can be T-dearer than a larger
    # one (fewer Toffolis, but more controls each), so descend on the
    # ``rtof`` cost over one activation-gated encoding that spans every
    # cube count the baseline permits.
    min_cubes = len(best)
    if (_cover_cost(baseline), len(baseline)) < (_cover_cost(best), len(best)):
        best = list(baseline)
    best_cost = _cover_cost(best)
    slots = min(len(baseline), min_cubes + _DESCENT_SLOT_SLACK)

    def descend(cost_bound, cube_bound):
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None
        cnf, selectors, active = _build_cover_cnf(
            truth, num_vars, slots, activation=True
        )
        cnf.at_most_k(active, cube_bound)
        cnf.at_most_k(_cost_literals(cnf, selectors), cost_bound)
        result = solve(
            cnf,
            time_budget=remaining,
            conflict_budget=_DESCENT_CONFLICT_BUDGET,
        )
        if result.status != "sat":
            return None
        return _cover_from_model(result.model, selectors, num_vars, active)

    while best_cost > 0:
        found = descend(best_cost - 1, slots)
        if found is None:
            break
        best, best_cost = found, _cover_cost(found)

    # Re-minimise the cube count at the optimal cost: a cost-free slot is
    # an empty cube the descent has no reason to drop.  (No literal pass —
    # the tiered cost already distinguishes every control count above one,
    # so only free NOT/CNOT cubes could change.)
    while len(best) > min_cubes:
        found = descend(best_cost, len(best) - 1)
        if found is None:
            break
        best = found

    if _cover_truth(best) != truth:  # defensive: the cover must verify
        _stats["fallbacks"] += 1
        _memo[key] = list(baseline)
        return list(baseline)

    _stats["optimal"] += 1
    _memo[key] = list(best)
    return list(best)
