"""Explicit truth tables for multi-output Boolean functions.

Two representations are used throughout the package:

* :class:`TruthTable` — a multi-output function ``f : B^n -> B^m`` stored as a
  numpy array of output *words* (``words[x]`` is the integer whose bit ``j``
  is output ``j`` evaluated on minterm ``x``).  This is the work-horse for
  embedding, equivalence checking and the functional synthesis flow.

* plain Python integers as *single-output* truth tables for small functions
  (bit ``i`` of the integer is the function value on minterm ``i``).  These
  are used for cut functions, ISOP computation and XMG resynthesis; the
  ``tt_*`` helpers below operate on them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.utils.bitops import clog2

__all__ = [
    "TruthTable",
    "tt_const0",
    "tt_const1",
    "tt_var",
    "tt_not",
    "tt_and",
    "tt_or",
    "tt_xor",
    "tt_cofactor0",
    "tt_cofactor1",
    "tt_support",
    "tt_popcount",
    "tt_num_words",
    "tt_to_words",
    "tt_from_words",
    "tt_var_words",
    "tt_cofactor0_words",
    "tt_cofactor1_words",
    "tt_support_words",
]


# ---------------------------------------------------------------------------
# Single-output truth tables as plain integers
# ---------------------------------------------------------------------------

def tt_mask(num_vars: int) -> int:
    """All-ones mask for a ``num_vars``-variable truth table."""
    return (1 << (1 << num_vars)) - 1


def tt_const0(num_vars: int) -> int:
    """Constant-0 function."""
    return 0


def tt_const1(num_vars: int) -> int:
    """Constant-1 function."""
    return tt_mask(num_vars)


@lru_cache(maxsize=None)
def tt_var(index: int, num_vars: int) -> int:
    """Projection function of variable ``index`` (0 = least significant)."""
    if not 0 <= index < num_vars:
        raise ValueError(f"variable index {index} out of range for {num_vars} vars")
    block = 1 << index
    pattern = ((1 << block) - 1) << block  # 'block' zeros then 'block' ones
    period = block * 2
    result = 0
    for start in range(0, 1 << num_vars, period):
        result |= pattern << start
    return result


def tt_not(func: int, num_vars: int) -> int:
    """Complement of a truth table."""
    return func ^ tt_mask(num_vars)


def tt_and(a: int, b: int) -> int:
    """Conjunction of two truth tables over the same variable set."""
    return a & b


def tt_or(a: int, b: int) -> int:
    """Disjunction of two truth tables over the same variable set."""
    return a | b


def tt_xor(a: int, b: int) -> int:
    """Exclusive or of two truth tables over the same variable set."""
    return a ^ b


def tt_cofactor0(func: int, var: int, num_vars: int) -> int:
    """Negative cofactor ``f|_{x_var = 0}`` (result still over ``num_vars`` vars)."""
    high_mask = tt_var(var, num_vars)
    low = func & ~high_mask & tt_mask(num_vars)
    return low | (low << (1 << var))


def tt_cofactor1(func: int, var: int, num_vars: int) -> int:
    """Positive cofactor ``f|_{x_var = 1}`` (result still over ``num_vars`` vars)."""
    high_mask = tt_var(var, num_vars)
    high = func & high_mask
    return high | (high >> (1 << var))


def tt_support(func: int, num_vars: int) -> List[int]:
    """Indices of variables the function actually depends on."""
    support = []
    for var in range(num_vars):
        if tt_cofactor0(func, var, num_vars) != tt_cofactor1(func, var, num_vars):
            support.append(var)
    return support


def tt_popcount(func: int) -> int:
    """Number of minterms on which the function is 1."""
    return bin(func).count("1")


# ---------------------------------------------------------------------------
# Single-output truth tables as packed uint64 word arrays
#
# Functions of more than ~8 variables make the big-int helpers above pay
# for arbitrary-precision arithmetic on every cofactor; the ``*_words``
# variants below hold the same truth table as a little-endian numpy uint64
# array (word ``w`` covers minterms ``64*w .. 64*w + 63``) so cofactor and
# support computation stay word-parallel.  The big-int helpers remain the
# reference oracle; the property tests cross-check the two representations
# on random functions.
# ---------------------------------------------------------------------------

def tt_num_words(num_vars: int) -> int:
    """Number of uint64 words of a packed ``num_vars``-variable table."""
    return 1 if num_vars <= 6 else 1 << (num_vars - 6)


def tt_to_words(func: int, num_vars: int) -> np.ndarray:
    """Pack an integer truth table into a little-endian uint64 word array."""
    func &= tt_mask(num_vars)
    num_words = tt_num_words(num_vars)
    raw = func.to_bytes(8 * num_words, "little")
    return np.frombuffer(raw, dtype="<u8").copy()


def tt_from_words(words: np.ndarray, num_vars: int) -> int:
    """Unpack a uint64 word array back into an integer truth table."""
    value = int.from_bytes(np.ascontiguousarray(words, dtype="<u8").tobytes(),
                           "little")
    return value & tt_mask(num_vars)


#: In-word projection patterns of variables 0..5 (variable ``v`` alternates
#: in blocks of ``2**v`` bits, so for ``v < 6`` the pattern repeats in every
#: 64-bit word).
_WORD_VAR_PATTERNS = tuple(
    np.uint64(tt_var(v, 6)) for v in range(6)
)


def tt_var_words(index: int, num_vars: int) -> np.ndarray:
    """Projection function of variable ``index`` as a packed word array."""
    if not 0 <= index < num_vars:
        raise ValueError(f"variable index {index} out of range for {num_vars} vars")
    num_words = tt_num_words(num_vars)
    if index < 6:
        pattern = (_WORD_VAR_PATTERNS[index] if num_vars >= 6
                   else np.uint64(tt_var(index, num_vars)))
        return np.full(num_words, pattern, dtype=np.uint64)
    # Word w is all-ones exactly when bit (index - 6) of w is set.
    high = (np.arange(num_words, dtype=np.uint64) >> np.uint64(index - 6)) & np.uint64(1)
    return high * np.uint64(0xFFFFFFFFFFFFFFFF)


def tt_cofactor0_words(words: np.ndarray, var: int, num_vars: int) -> np.ndarray:
    """Negative cofactor on a packed word array (still over ``num_vars`` vars)."""
    if not 0 <= var < num_vars:
        raise ValueError(f"variable index {var} out of range for {num_vars} vars")
    words = np.asarray(words, dtype=np.uint64)
    if var < 6:
        high_mask = (_WORD_VAR_PATTERNS[var] if num_vars >= 6
                     else np.uint64(tt_var(var, num_vars)))
        low = words & ~high_mask
        if num_vars < 6:
            low &= np.uint64(tt_mask(num_vars))
        return low | (low << np.uint64(1 << var))
    block = 1 << (var - 6)
    paired = words.reshape(-1, 2, block)
    result = np.empty_like(paired)
    result[:, 0] = paired[:, 0]
    result[:, 1] = paired[:, 0]
    return result.reshape(-1)


def tt_cofactor1_words(words: np.ndarray, var: int, num_vars: int) -> np.ndarray:
    """Positive cofactor on a packed word array (still over ``num_vars`` vars)."""
    if not 0 <= var < num_vars:
        raise ValueError(f"variable index {var} out of range for {num_vars} vars")
    words = np.asarray(words, dtype=np.uint64)
    if var < 6:
        high_mask = (_WORD_VAR_PATTERNS[var] if num_vars >= 6
                     else np.uint64(tt_var(var, num_vars)))
        high = words & high_mask
        return high | (high >> np.uint64(1 << var))
    block = 1 << (var - 6)
    paired = words.reshape(-1, 2, block)
    result = np.empty_like(paired)
    result[:, 0] = paired[:, 1]
    result[:, 1] = paired[:, 1]
    return result.reshape(-1)


def tt_support_words(words: np.ndarray, num_vars: int) -> List[int]:
    """Indices of variables a packed word-array table actually depends on."""
    words = np.asarray(words, dtype=np.uint64)
    support = []
    for var in range(num_vars):
        if var < 6:
            high_mask = (_WORD_VAR_PATTERNS[var] if num_vars >= 6
                         else np.uint64(tt_var(var, num_vars)))
            shifted = (words >> np.uint64(1 << var)) ^ words
            depends = bool(np.any(shifted & ~high_mask
                                  & np.uint64(tt_mask(min(num_vars, 6)))))
        else:
            block = 1 << (var - 6)
            paired = words.reshape(-1, 2, block)
            depends = bool(np.any(paired[:, 0] != paired[:, 1]))
        if depends:
            support.append(var)
    return support


# ---------------------------------------------------------------------------
# Multi-output truth tables
# ---------------------------------------------------------------------------

class TruthTable:
    """A multi-output Boolean function ``f : B^n -> B^m`` stored explicitly.

    The representation is a single numpy array ``words`` of length ``2**n``
    where ``words[x]`` holds the ``m``-bit output word for input minterm
    ``x`` (bit ``j`` of the word is output ``j``).  Input minterms encode
    ``x_1`` of the paper as bit 0.

    The explicit representation is only used where the paper also needs one
    (optimum embedding, functional synthesis, exhaustive verification), so
    ``n`` stays below ~24 in practice.
    """

    __slots__ = ("num_inputs", "num_outputs", "words")

    def __init__(self, num_inputs: int, num_outputs: int, words: np.ndarray):
        if num_inputs < 0:
            raise ValueError("num_inputs must be non-negative")
        if not 0 <= num_outputs <= 63:
            raise ValueError("num_outputs must be between 0 and 63")
        words = np.asarray(words, dtype=np.uint64)
        if words.shape != (1 << num_inputs,):
            raise ValueError(
                f"expected {1 << num_inputs} output words, got shape {words.shape}"
            )
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.words = words

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_callable(
        cls, fn: Callable[[int], int], num_inputs: int, num_outputs: int
    ) -> "TruthTable":
        """Build a truth table by evaluating ``fn`` on every minterm.

        ``fn`` receives the input minterm as an integer and must return the
        output word as an integer.
        """
        words = np.zeros(1 << num_inputs, dtype=np.uint64)
        for x in range(1 << num_inputs):
            value = fn(x)
            if value < 0 or value >= (1 << num_outputs):
                raise ValueError(
                    f"output word {value} of minterm {x} does not fit in "
                    f"{num_outputs} outputs"
                )
            words[x] = value
        return cls(num_inputs, num_outputs, words)

    @classmethod
    def from_columns(cls, columns: Sequence[int], num_inputs: int) -> "TruthTable":
        """Build a truth table from single-output integer truth tables.

        ``columns[j]`` is the integer truth table (bit ``x`` = value on
        minterm ``x``) of output ``j``.
        """
        num_outputs = len(columns)
        words = np.zeros(1 << num_inputs, dtype=np.uint64)
        for j, column in enumerate(columns):
            if column < 0 or column >> (1 << num_inputs):
                raise ValueError(f"column {j} does not fit {num_inputs} inputs")
            for x in range(1 << num_inputs):
                if (column >> x) & 1:
                    words[x] |= np.uint64(1 << j)
        return cls(num_inputs, num_outputs, words)

    @classmethod
    def from_output_vectors(cls, vectors: Sequence[np.ndarray]) -> "TruthTable":
        """Build a truth table from boolean numpy arrays (one per output)."""
        if not vectors:
            raise ValueError("at least one output vector is required")
        length = len(vectors[0])
        if length == 0 or length & (length - 1):
            raise ValueError("output vectors must have power-of-two length")
        num_inputs = clog2(length) if length > 1 else 0
        words = np.zeros(length, dtype=np.uint64)
        for j, vec in enumerate(vectors):
            vec = np.asarray(vec, dtype=bool)
            if vec.shape != (length,):
                raise ValueError("all output vectors must have the same length")
            words |= vec.astype(np.uint64) << np.uint64(j)
        return cls(num_inputs, len(vectors), words)

    # -- queries ------------------------------------------------------------

    def evaluate(self, minterm: int) -> int:
        """Output word for one input minterm."""
        if not 0 <= minterm < (1 << self.num_inputs):
            raise ValueError(f"minterm {minterm} out of range")
        return int(self.words[minterm])

    def output_bit(self, minterm: int, output: int) -> int:
        """Single output bit for one input minterm."""
        return (self.evaluate(minterm) >> output) & 1

    def column(self, output: int) -> int:
        """Output ``output`` as a single-output integer truth table."""
        if not 0 <= output < self.num_outputs:
            raise ValueError(f"output index {output} out of range")
        bits = (self.words >> np.uint64(output)) & np.uint64(1)
        result = 0
        for x in np.nonzero(bits)[0]:
            result |= 1 << int(x)
        return result

    def columns(self) -> List[int]:
        """All outputs as single-output integer truth tables."""
        return [self.column(j) for j in range(self.num_outputs)]

    def column_array(self, output: int) -> np.ndarray:
        """Output ``output`` as a boolean numpy vector over all minterms."""
        if not 0 <= output < self.num_outputs:
            raise ValueError(f"output index {output} out of range")
        return ((self.words >> np.uint64(output)) & np.uint64(1)).astype(bool)

    def collision_histogram(self) -> Dict[int, int]:
        """Map output word -> number of input minterms producing it.

        This is the quantity behind Eq. (3) of the paper: the minimum number
        of additional lines of an embedding is ``ceil(log2(max count))``.
        """
        values, counts = np.unique(self.words, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def max_collisions(self) -> int:
        """Largest number of minterms mapped to the same output word."""
        if self.words.size == 0:
            return 0
        _, counts = np.unique(self.words, return_counts=True)
        return int(counts.max())

    def is_reversible(self) -> bool:
        """True iff the function is a bijection on ``B^n`` (requires n == m)."""
        if self.num_inputs != self.num_outputs:
            return False
        return len(np.unique(self.words)) == self.words.size

    def permutation(self) -> np.ndarray:
        """Return the function as a permutation array (requires reversibility)."""
        if not self.is_reversible():
            raise ValueError("truth table is not a reversible function")
        return self.words.astype(np.int64)

    # -- transformations ----------------------------------------------------

    def select_outputs(self, outputs: Sequence[int]) -> "TruthTable":
        """Project onto a subset / reordering of outputs."""
        words = np.zeros_like(self.words)
        for new_index, old_index in enumerate(outputs):
            if not 0 <= old_index < self.num_outputs:
                raise ValueError(f"output index {old_index} out of range")
            bit = (self.words >> np.uint64(old_index)) & np.uint64(1)
            words |= bit << np.uint64(new_index)
        return TruthTable(self.num_inputs, len(outputs), words)

    def compose_outputs(self, fn: Callable[[int], int], num_outputs: int) -> "TruthTable":
        """Apply an output-word transformation ``fn`` to every minterm."""
        words = np.array([fn(int(w)) for w in self.words], dtype=np.uint64)
        return TruthTable(self.num_inputs, num_outputs, words)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return (
            self.num_inputs == other.num_inputs
            and self.num_outputs == other.num_outputs
            and bool(np.array_equal(self.words, other.words))
        )

    def __hash__(self) -> int:  # pragma: no cover - TruthTable used as value type
        return hash((self.num_inputs, self.num_outputs, self.words.tobytes()))

    def __repr__(self) -> str:
        return (
            f"TruthTable(num_inputs={self.num_inputs}, "
            f"num_outputs={self.num_outputs})"
        )
