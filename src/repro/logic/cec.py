"""Combinational equivalence checking (the ABC ``cec`` analogue).

The paper verifies every synthesised reversible circuit against the original
design with ABC's equivalence checker.  We provide the same safety net:

* exhaustive checking (complete) for designs with a moderate number of
  inputs, via bit-parallel word-batch simulation,
* random simulation (falsification only) for larger designs,
* BDD-based checking as an orthogonal complete method for medium designs.

The exhaustive and random methods are thin wrappers over the unified
differential checker in :mod:`repro.verify.differential`, which simulates
both AIGs on the same 64-patterns-per-word batch and reconstructs a
concrete counterexample minterm on disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.logic.aig import Aig
from repro.logic.collapse import collapse_to_bdd
from repro.logic.truth_table import TruthTable

__all__ = ["CecResult", "check_equivalence", "check_against_truth_table"]


@dataclass(frozen=True)
class CecResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    complete: bool
    counterexample: Optional[int] = None
    method: str = "exhaustive"

    def __bool__(self) -> bool:
        return self.equivalent


def _check_interfaces(a, b) -> None:
    if a.num_pis() != b.num_pis():
        raise ValueError(
            f"input counts differ: {a.num_pis()} vs {b.num_pis()}"
        )
    if a.num_pos() != b.num_pos():
        raise ValueError(
            f"output counts differ: {a.num_pos()} vs {b.num_pos()}"
        )


def check_equivalence(
    a: Aig,
    b: Aig,
    exhaustive_limit: int = 16,
    num_random_patterns: int = 4096,
    method: str = "auto",
    seed: int = 1,
) -> CecResult:
    """Check whether two AIGs implement the same multi-output function.

    ``method`` is ``"auto"`` (exhaustive if the input count allows it,
    random simulation otherwise), ``"exhaustive"``, ``"random"`` or
    ``"bdd"``.
    """
    # Imported lazily: the verify package imports the logic-network types,
    # so a module-level import here would be circular.
    from repro.verify.differential import check_equivalent

    _check_interfaces(a, b)
    if method == "auto":
        method = "exhaustive" if a.num_pis() <= exhaustive_limit else "random"

    if method == "exhaustive":
        result = check_equivalent(a, b, mode="full")
        return CecResult(
            result.equivalent, True, result.counterexample, "exhaustive"
        )

    if method == "bdd":
        manager_a, roots_a = collapse_to_bdd(a)
        manager_b, roots_b = collapse_to_bdd(b)
        for root_a, root_b in zip(roots_a, roots_b):
            # Compare by re-expanding output columns in manager_a's order
            # (both managers use PI order, which coincides by construction).
            if manager_a.to_truth_table(root_a) != manager_b.to_truth_table(root_b):
                return CecResult(False, True, None, "bdd")
        return CecResult(True, True, None, "bdd")

    if method == "random":
        result = check_equivalent(
            a, b, mode="sampled", num_samples=num_random_patterns, seed=seed
        )
        # A sample budget covering the whole input space upgrades the
        # random method to a complete verdict (the differential checker
        # degrades to the exhaustive batch instead of drawing duplicates).
        return CecResult(
            result.equivalent, result.complete, result.counterexample, "random"
        )

    raise ValueError(f"unknown equivalence checking method {method!r}")


def check_against_truth_table(aig: Aig, table: TruthTable) -> CecResult:
    """Exhaustively compare an AIG against an explicit truth table."""
    from repro.verify.differential import check_equivalent

    if aig.num_pis() != table.num_inputs or aig.num_pos() != table.num_outputs:
        raise ValueError("interface mismatch between AIG and truth table")
    result = check_equivalent(table, aig, mode="full")
    return CecResult(result.equivalent, True, result.counterexample, "exhaustive")
