"""XOR-majority graphs (XMGs).

XMGs are the logic representation used by the hierarchical flow of the
paper: internal nodes are either three-input majority (MAJ) or two-input XOR
operations, and edges may be complemented.  They are advantageous for
reversible synthesis because

* a MAJ node (and therefore also AND/OR, which are MAJ with a constant
  input) can be realised with a single Toffoli gate,
* XOR nodes cost only CNOTs and therefore no T gates,
* XOR/MAJ nodes can be computed in place when their operands are no longer
  needed.

The structure mirrors :class:`repro.logic.aig.Aig`: nodes are created in
topological order, literals are ``2*node + complement`` and structural
hashing keeps the graph canonical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.lits import (  # noqa: F401  (re-exported for compatibility)
    lit_is_compl,
    lit_node,
    lit_not,
    lit_not_cond,
    make_lit,
)
from repro.logic.truth_table import TruthTable, tt_mask, tt_var

__all__ = ["Xmg"]


class Xmg:
    """A combinational XOR-majority graph."""

    CONST0 = 0
    CONST1 = 1

    #: Network-type tag of the :class:`repro.logic.network.LogicNetwork`
    #: protocol (the pass manager keys pass applicability on it).
    network_type = "xmg"

    _KIND_CONST = 0
    _KIND_PI = 1
    _KIND_MAJ = 2
    _KIND_XOR = 3

    def __init__(self, name: str = "xmg"):
        self.name = name
        self._kind: List[int] = [self._KIND_CONST]
        self._fanins: List[Tuple[int, ...]] = [()]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []
        self._po_names: List[str] = []
        self._strash: Dict[Tuple[int, Tuple[int, ...]], int] = {}

    # -- construction --------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input and return its literal."""
        node = len(self._kind)
        self._kind.append(self._KIND_PI)
        self._fanins.append(())
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return make_lit(node)

    def add_po(self, lit: int, name: Optional[str] = None) -> int:
        """Register a literal as primary output; returns the output index."""
        self._check_lit(lit)
        self._pos.append(lit)
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")
        return len(self._pos) - 1

    def _new_node(self, kind: int, fanins: Tuple[int, ...]) -> int:
        key = (kind, fanins)
        node = self._strash.get(key)
        if node is None:
            node = len(self._kind)
            self._kind.append(kind)
            self._fanins.append(fanins)
            self._strash[key] = node
        return make_lit(node)

    def create_maj(self, a: int, b: int, c: int) -> int:
        """Create (or reuse) a majority-of-three node."""
        for lit in (a, b, c):
            self._check_lit(lit)
        # Simplifications: equal / complementary operands.
        if a == b:
            return a
        if a == c:
            return a
        if b == c:
            return b
        if a == lit_not(b):
            return c
        if a == lit_not(c):
            return b
        if b == lit_not(c):
            return a
        # Constant propagation: MAJ(a, b, 0) = a AND b, MAJ(a, b, 1) = a OR b
        # are kept as MAJ nodes with a constant fanin (this is exactly how
        # the XMG-based flow sees AND/OR gates), but double constants fold.
        fanins = sorted([a, b, c])
        # Canonical complementation: MAJ is self-dual, so if two or more
        # fanins are complemented we complement all of them and the output.
        num_compl = sum(lit_is_compl(lit) for lit in fanins)
        output_compl = False
        if num_compl >= 2:
            fanins = [lit_not(lit) for lit in fanins]
            output_compl = True
            fanins.sort()
        node_lit = self._new_node(self._KIND_MAJ, tuple(fanins))
        return lit_not_cond(node_lit, output_compl)

    def create_and(self, a: int, b: int) -> int:
        """AND as majority with a constant-0 fanin."""
        return self.create_maj(a, b, self.CONST0)

    def create_or(self, a: int, b: int) -> int:
        """OR as majority with a constant-1 fanin."""
        return self.create_maj(a, b, self.CONST1)

    def create_xor(self, a: int, b: int) -> int:
        """Create (or reuse) a two-input XOR node."""
        self._check_lit(a)
        self._check_lit(b)
        if a == b:
            return self.CONST0
        if a == lit_not(b):
            return self.CONST1
        if a == self.CONST0:
            return b
        if b == self.CONST0:
            return a
        if a == self.CONST1:
            return lit_not(b)
        if b == self.CONST1:
            return lit_not(a)
        # Push complements to the output: XOR(a', b) = XOR(a, b)'.
        output_compl = lit_is_compl(a) ^ lit_is_compl(b)
        fanins = tuple(sorted((a & ~1, b & ~1)))
        node_lit = self._new_node(self._KIND_XOR, fanins)
        return lit_not_cond(node_lit, output_compl)

    def create_xor3(self, a: int, b: int, c: int) -> int:
        """Three-input XOR as two cascaded XOR nodes."""
        return self.create_xor(self.create_xor(a, b), c)

    def create_ite(self, sel: int, if_true: int, if_false: int) -> int:
        """Multiplexer built from majority/xor nodes.

        ``ite(s, t, e) = maj(s, t, e) xor maj(s', t, e) xor (t xor e) ...``
        is more expensive than the simple AND/OR form, so we use
        ``(s AND t) OR (s' AND e)``.
        """
        return self.create_or(
            self.create_and(sel, if_true), self.create_and(lit_not(sel), if_false)
        )

    # -- structure queries -----------------------------------------------------

    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pis)

    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._pos)

    def pis(self) -> List[int]:
        """Literals of the primary inputs."""
        return [make_lit(node) for node in self._pis]

    def pos(self) -> List[int]:
        """Literals driving the primary outputs."""
        return list(self._pos)

    def pi_names(self) -> List[str]:
        """Names of the primary inputs."""
        return list(self._pi_names)

    def po_names(self) -> List[str]:
        """Names of the primary outputs."""
        return list(self._po_names)

    def is_pi(self, node: int) -> bool:
        """True if the node is a primary input."""
        return self._kind[node] == self._KIND_PI

    def is_maj(self, node: int) -> bool:
        """True if the node is a majority node."""
        return self._kind[node] == self._KIND_MAJ

    def is_xor(self, node: int) -> bool:
        """True if the node is an XOR node."""
        return self._kind[node] == self._KIND_XOR

    def is_const(self, node: int) -> bool:
        """True if the node is the constant node."""
        return self._kind[node] == self._KIND_CONST

    def fanins(self, node: int) -> Tuple[int, ...]:
        """Fanin literals of a node (empty for PIs and the constant)."""
        return self._fanins[node]

    def nodes(self) -> range:
        """All node indices in topological order."""
        return range(len(self._kind))

    def is_gate(self, node: int) -> bool:
        """True if the node is an internal gate (MAJ or XOR)."""
        return self._kind[node] in (self._KIND_MAJ, self._KIND_XOR)

    def gate_nodes(self) -> List[int]:
        """Indices of all MAJ/XOR nodes in topological order."""
        return [n for n in self.nodes() if self.is_gate(n)]

    def eval_gate(self, node: int, operands: Sequence[int]) -> int:
        """Evaluate one gate on complement-adjusted operand words.

        Part of the :class:`repro.logic.network.LogicNetwork` protocol:
        ``operands`` are the fanin values (bit-parallel integer words or
        plain truth tables) with fanin complements already applied, in
        fanin order — majority-of-three for MAJ nodes, parity for XOR.
        """
        if self.is_maj(node):
            a, b, c = operands
            return (a & b) | (a & c) | (b & c)
        if self.is_xor(node):
            return operands[0] ^ operands[1]
        raise ValueError(f"node {node} is not a gate")

    def num_maj(self) -> int:
        """Number of majority nodes (including AND/OR specialisations)."""
        return sum(1 for n in self.nodes() if self.is_maj(n))

    def num_xor(self) -> int:
        """Number of XOR nodes."""
        return sum(1 for n in self.nodes() if self.is_xor(n))

    def num_gates(self) -> int:
        """Total number of gate nodes."""
        return self.num_maj() + self.num_xor()

    def fanout_counts(self) -> List[int]:
        """Number of fanouts of every node (POs count as fanouts)."""
        counts = [0] * len(self._kind)
        for node in self.nodes():
            for fanin in self._fanins[node]:
                counts[lit_node(fanin)] += 1
        for po in self._pos:
            counts[lit_node(po)] += 1
        return counts

    def levels(self) -> Dict[int, int]:
        """Logic level of every node."""
        level: Dict[int, int] = {}
        for node in self.nodes():
            fanins = self._fanins[node]
            if not fanins:
                level[node] = 0
            else:
                level[node] = 1 + max(level[lit_node(f)] for f in fanins)
        return level

    def depth(self) -> int:
        """Number of logic levels on the longest PI-to-PO path."""
        if not self._pos:
            return 0
        level = self.levels()
        return max(level[lit_node(po)] for po in self._pos)

    def _check_lit(self, lit: int) -> None:
        node = lit_node(lit)
        if not 0 <= node < len(self._kind):
            raise ValueError(f"literal {lit} references unknown node {node}")

    # -- simulation -------------------------------------------------------------

    def node_truth_tables(self) -> List[int]:
        """Integer truth tables (over all PIs) of every node."""
        num_vars = len(self._pis)
        mask = tt_mask(num_vars)
        tables: List[int] = [0] * len(self._kind)
        for i, node in enumerate(self._pis):
            tables[node] = tt_var(i, num_vars)

        def lit_table(lit: int) -> int:
            table = tables[lit_node(lit)]
            if lit_is_compl(lit):
                table ^= mask
            return table

        for node in self.nodes():
            if self.is_maj(node):
                a, b, c = (lit_table(f) for f in self._fanins[node])
                tables[node] = (a & b) | (a & c) | (b & c)
            elif self.is_xor(node):
                a, b = (lit_table(f) for f in self._fanins[node])
                tables[node] = a ^ b
        return tables

    def output_columns(self) -> List[int]:
        """Integer truth tables of every primary output."""
        num_vars = len(self._pis)
        mask = tt_mask(num_vars)
        tables = self.node_truth_tables()
        columns = []
        for po in self._pos:
            table = tables[lit_node(po)]
            if lit_is_compl(po):
                table ^= mask
            columns.append(table)
        return columns

    def to_truth_table(self) -> TruthTable:
        """Expand the XMG into an explicit multi-output truth table."""
        return TruthTable.from_columns(self.output_columns(), self.num_pis())

    def simulate_minterm(self, minterm: int) -> int:
        """Evaluate the XMG on one input assignment; returns the output word."""
        values: List[bool] = [False] * len(self._kind)
        for i, node in enumerate(self._pis):
            values[node] = bool((minterm >> i) & 1)

        def lit_value(lit: int) -> bool:
            return values[lit_node(lit)] ^ lit_is_compl(lit)

        for node in self.nodes():
            if self.is_maj(node):
                a, b, c = (lit_value(f) for f in self._fanins[node])
                values[node] = (a and b) or (a and c) or (b and c)
            elif self.is_xor(node):
                a, b = (lit_value(f) for f in self._fanins[node])
                values[node] = a ^ b

        word = 0
        for j, po in enumerate(self._pos):
            if lit_value(po):
                word |= 1 << j
        return word

    # -- maintenance -------------------------------------------------------------

    def cleanup(self) -> "Xmg":
        """Return a copy containing only nodes reachable from the outputs."""
        reachable = set()
        stack = [lit_node(po) for po in self._pos]
        while stack:
            node = stack.pop()
            if node in reachable or self.is_const(node):
                continue
            reachable.add(node)
            for fanin in self._fanins[node]:
                stack.append(lit_node(fanin))

        result = Xmg(self.name)
        mapping: Dict[int, int] = {0: Xmg.CONST0}
        for node, name in zip(self._pis, self._pi_names):
            mapping[node] = result.add_pi(name)
        for node in self.nodes():
            if node not in reachable or self.is_pi(node) or self.is_const(node):
                continue
            fanins = [
                lit_not_cond(mapping[lit_node(f)], lit_is_compl(f))
                for f in self._fanins[node]
            ]
            if self.is_maj(node):
                mapping[node] = result.create_maj(*fanins)
            else:
                mapping[node] = result.create_xor(*fanins)
        for po, name in zip(self._pos, self._po_names):
            result.add_po(lit_not_cond(mapping[lit_node(po)], lit_is_compl(po)), name)
        return result

    def __repr__(self) -> str:
        return (
            f"Xmg(name={self.name!r}, pis={self.num_pis()}, pos={self.num_pos()}, "
            f"maj={self.num_maj()}, xor={self.num_xor()})"
        )
