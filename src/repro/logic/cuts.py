"""k-feasible cut enumeration and LUT covering for logic networks.

Cut enumeration is the engine behind the ``xmglut`` analogue
(:mod:`repro.logic.xmg_mapping`): the AIG is covered by k-input LUTs and each
LUT function is then resynthesised into XOR/majority primitives.

All entry points are written against the
:class:`~repro.logic.network.LogicNetwork` protocol, not against
:class:`~repro.logic.aig.Aig`: cut merging iterates whatever fanin tuple a
gate reports (two for AND/XOR, three for MAJ) and truth-table extraction
evaluates nodes through :meth:`~repro.logic.network.LogicNetwork.eval_gate`.
The same machinery therefore covers AIGs for the LUT/pebbling flow *and*
XMGs for the cut-based MAJ refactoring pass of :mod:`repro.opt`.

The implementation follows the standard *priority cuts* scheme: every node
keeps at most ``max_cuts`` cuts of at most ``k`` leaves, obtained by merging
the cut sets of its fanins, plus the trivial cut ``{node}``.  Dominated
cuts — cuts whose leaf set is a strict superset of another cut's leaves at
the same node — are filtered out before the priority truncation: they can
never lead to a better cover and would otherwise crowd useful cuts out of
the bounded priority list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.logic.lits import lit_is_compl, lit_node
from repro.logic.network import LogicNetwork
from repro.logic.truth_table import tt_mask, tt_var

__all__ = [
    "Cut",
    "enumerate_cuts",
    "cut_truth_table",
    "filter_dominated_cuts",
    "LutMapping",
    "lut_map",
]


@dataclass(frozen=True)
class Cut:
    """A cut of an AIG node: the node it covers and its leaf set."""

    root: int
    leaves: Tuple[int, ...]

    def size(self) -> int:
        """Number of leaves."""
        return len(self.leaves)


def filter_dominated_cuts(cuts: Sequence[Cut]) -> List[Cut]:
    """Remove dominated cuts, preserving the input order.

    A cut is *dominated* when another cut of the same node has a strict
    subset of its leaves: every cover using the dominated cut could use the
    dominating one instead, with the same or fewer dependencies.  Identical
    leaf sets are kept once (the first occurrence wins).
    """
    kept: List[Cut] = []
    kept_leaves: List[Set[int]] = []
    for cut in cuts:
        leaves = set(cut.leaves)
        if any(other <= leaves for other in kept_leaves):
            continue
        # A later cut never dominates an earlier one under the (size, ...)
        # priority order, but the helper must not rely on its input being
        # sorted — drop any earlier cut this one dominates.
        survivors = [
            (kept_cut, kept_set)
            for kept_cut, kept_set in zip(kept, kept_leaves)
            if not leaves < kept_set
        ]
        kept = [cut_ for cut_, _ in survivors] + [cut]
        kept_leaves = [set_ for _, set_ in survivors] + [leaves]
    return kept


def enumerate_cuts(
    network: LogicNetwork, k: int = 4, max_cuts: int = 8, selection: str = "depth"
) -> Dict[int, List[Cut]]:
    """Enumerate up to ``max_cuts`` k-feasible cuts for every node.

    ``network`` is any :class:`~repro.logic.network.LogicNetwork` (AIG or
    XMG); cut merging combines one cut per fanin, however many fanins the
    gate has.  Returns a mapping from node index to its cut list.  The
    first cut of every node is its *best* cut under the ``selection``
    policy; the trivial cut is always included last.  Dominated cuts (leaf
    supersets of another cut at the same node) are filtered before the
    priority truncation.

    ``selection`` orders each node's priority list:

    * ``"depth"`` (default) — by (size, estimated depth): small shallow
      cuts first, the historical order the XMG mapping builds on,
    * ``"area"``  — by *area flow*: the estimated number of LUTs a cover
      through the cut instantiates (``1 +`` the best-cut areas of its
      leaves), so the best cut genuinely minimises LUT count and the LUT
      size ``k`` becomes an area knob.
    """
    if k < 2:
        raise ValueError("cut size must be at least 2")
    if selection not in ("depth", "area"):
        raise ValueError(
            f"unknown cut selection policy {selection!r}; "
            "expected 'depth' or 'area'"
        )
    cuts: Dict[int, List[Cut]] = {0: [Cut(0, ())]}
    levels = network.levels()
    # Area flow of the best cut of every processed node (PIs cost nothing).
    best_area: Dict[int, int] = {0: 0}

    for node in network.nodes():
        if node == 0:
            continue
        if network.is_pi(node):
            cuts[node] = [Cut(node, (node,))]
            best_area[node] = 0
            continue
        fanin_nodes = [lit_node(f) for f in network.fanins(node)]
        merged: Set[Tuple[int, ...]] = set()
        for combo in iter_product(*(cuts[f] for f in fanin_nodes)):
            leaf_set: Set[int] = set()
            for cut_ in combo:
                leaf_set.update(cut_.leaves)
            leaves = tuple(sorted(leaf_set))
            if len(leaves) <= k:
                merged.add(leaves)
        candidates = [Cut(node, leaves) for leaves in merged]
        if selection == "area":
            candidates.sort(
                key=lambda cut: (
                    1 + sum(best_area[leaf] for leaf in cut.leaves),
                    cut.size(),
                    max((levels[leaf] for leaf in cut.leaves), default=0),
                    cut.leaves,
                )
            )
        else:
            candidates.sort(
                key=lambda cut: (
                    cut.size(),
                    max((levels[leaf] for leaf in cut.leaves), default=0),
                    cut.leaves,
                )
            )
        selected = filter_dominated_cuts(candidates)[:max_cuts]
        trivial = Cut(node, (node,))
        if trivial not in selected:
            selected.append(trivial)
        cuts[node] = selected
        best = selected[0]
        best_area[node] = (
            1 + sum(best_area[leaf] for leaf in best.leaves)
            if best.leaves != (node,)
            else 1
        )
    return cuts


def cut_truth_table(network: LogicNetwork, cut: Cut) -> int:
    """Integer truth table of the cut root expressed over its leaves.

    Leaf ``i`` of the cut corresponds to variable ``i`` of the truth table.
    The cone is walked with an explicit stack: a cut whose leaves sit right
    at the primary inputs (as the area-flow mapper likes to choose on
    reconvergent logic) can span a cone deeper than the Python recursion
    limit.  Node evaluation goes through
    :meth:`~repro.logic.network.LogicNetwork.eval_gate`, so AND, MAJ and
    XOR cones are all supported.
    """
    num_vars = len(cut.leaves)
    mask = tt_mask(num_vars)
    tables: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(cut.leaves):
        tables[leaf] = tt_var(i, num_vars)

    stack = [cut.root]
    while stack:
        node = stack[-1]
        if node in tables:
            stack.pop()
            continue
        if not network.is_gate(node):
            raise ValueError(
                f"node {node} is not inside the cone of cut {cut}: "
                "cut leaves do not form a proper cut"
            )
        fanins = network.fanins(node)
        pending = [
            fanin_node
            for fanin_node in (lit_node(f) for f in fanins)
            if fanin_node not in tables
        ]
        if pending:
            stack.extend(pending)
            continue
        operands = [
            tables[lit_node(f)] ^ (mask if lit_is_compl(f) else 0)
            for f in fanins
        ]
        tables[node] = network.eval_gate(node, operands) & mask
        stack.pop()

    return tables[cut.root]


@dataclass
class LutMapping:
    """Result of a LUT covering: one LUT per selected root node.

    All node indices refer to ``aig`` (the cleaned copy of the covered
    network — historically always an AIG, hence the field name; the
    :attr:`network` alias reads better for XMG covers), not to the network
    originally passed to :func:`lut_map`.
    """

    k: int
    aig: LogicNetwork
    # root node -> (leaf nodes, truth table over the leaves)
    luts: Dict[int, Tuple[Tuple[int, ...], int]] = field(default_factory=dict)
    # topological order of the LUT roots
    order: List[int] = field(default_factory=list)

    @property
    def network(self) -> LogicNetwork:
        """The covered network (alias of the historical ``aig`` field)."""
        return self.aig

    def num_luts(self) -> int:
        """Number of LUTs in the cover."""
        return len(self.luts)

    def dependencies(self, root: int) -> Tuple[int, ...]:
        """Leaves of ``root``'s LUT that are themselves LUT roots.

        Primary-input leaves carry their value on a circuit line at all
        times, so they never constrain a pebbling schedule; the returned
        tuple is exactly the set of LUTs whose values must be available
        (pebbled) for ``root`` to be computed or uncomputed.
        """
        leaves, _ = self.luts[root]
        return tuple(leaf for leaf in leaves if leaf in self.luts)

    def lut_cone(self, root: int) -> List[int]:
        """LUT roots in the transitive fanin of ``root`` (inclusive).

        Returned in topological order (node indices are topological in the
        underlying AIG).  ``root`` may be a primary input or the constant
        node, in which case the cone is empty.
        """
        if root not in self.luts:
            return []
        seen: Set[int] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.dependencies(node))
        return sorted(seen)

    def lut_levels(self) -> Dict[int, int]:
        """Logic level of every LUT in the LUT DAG (leaf LUTs at level 0)."""
        levels: Dict[int, int] = {}
        for root in self.order:
            deps = self.dependencies(root)
            levels[root] = 1 + max((levels[d] for d in deps), default=-1)
        return levels

    def lut_fanout_counts(self) -> Dict[int, int]:
        """Number of LUT DAG consumers of every LUT (POs count as consumers)."""
        counts: Dict[int, int] = {root: 0 for root in self.luts}
        for root in self.order:
            for dep in self.dependencies(root):
                counts[dep] += 1
        for po in self.aig.pos():
            node = lit_node(po)
            if node in counts:
                counts[node] += 1
        return counts

    def depth(self) -> int:
        """Number of LUT levels on the longest path to any output."""
        levels = self.lut_levels()
        return 1 + max(levels.values()) if levels else 0


def lut_map(
    network: LogicNetwork, k: int = 4, max_cuts: int = 8, selection: str = "depth"
) -> LutMapping:
    """Cover a logic network with k-input LUTs (greedy covering from the outputs).

    Every node first receives a *best cut* of its priority list; the cover
    is then chosen by walking backwards from the primary outputs and
    instantiating the best cut of every required node.  ``selection`` picks
    the best-cut policy:

    * ``"depth"`` (default) — small shallow cuts; many small LUTs, the
      historical behaviour the XMG mapping builds on,
    * ``"area"`` — area-flow ordering (see :func:`enumerate_cuts`): the
      cover instantiates the fewest LUTs the priority lists allow, which is
      what makes the LUT size ``k`` an actual area knob for the LUT-based
      pebbling flow and for the cut-based XMG refactoring pass.
    """
    network = network.cleanup()
    cuts = enumerate_cuts(network, k=k, max_cuts=max_cuts, selection=selection)

    best_cut: Dict[int, Cut] = {}
    for node in network.nodes():
        if network.is_gate(node):
            # Prefer non-trivial cuts; the enumeration could otherwise
            # select the trivial single-leaf cut.
            node_cuts = [c for c in cuts[node] if c.leaves != (node,)]
            if not node_cuts:
                # Only the self-cut is left: the gate's fanin arity
                # exceeds k, so no cover can express it (a cover through
                # an ancestor cut would need a non-trivial cut here too).
                # Fail loudly instead of emitting a self-referential LUT.
                raise ValueError(
                    f"cut size k={k} cannot cover node {node} with "
                    f"{len(network.fanins(node))} fanins; increase k to "
                    "at least the largest gate arity"
                )
            best_cut[node] = node_cuts[0]

    required: Set[int] = set()
    stack = [lit_node(po) for po in network.pos()]
    luts: Dict[int, Tuple[Tuple[int, ...], int]] = {}
    while stack:
        node = stack.pop()
        if node in required or node == 0 or network.is_pi(node):
            continue
        required.add(node)
        cut = best_cut[node]
        truth = cut_truth_table(network, cut)
        luts[node] = (cut.leaves, truth)
        for leaf in cut.leaves:
            stack.append(leaf)

    order = [node for node in network.nodes() if node in luts]
    return LutMapping(k=k, aig=network, luts=luts, order=order)
