"""k-feasible cut enumeration and LUT covering for logic networks.

Cut enumeration is the engine behind the ``xmglut`` analogue
(:mod:`repro.logic.xmg_mapping`): the AIG is covered by k-input LUTs and each
LUT function is then resynthesised into XOR/majority primitives.

All entry points are written against the
:class:`~repro.logic.network.LogicNetwork` protocol, not against
:class:`~repro.logic.aig.Aig`: cut merging iterates whatever fanin tuple a
gate reports (two for AND/XOR, three for MAJ) and truth-table extraction
evaluates nodes through :meth:`~repro.logic.network.LogicNetwork.eval_gate`.
The same machinery therefore covers AIGs for the LUT/pebbling flow *and*
XMGs for the cut-based MAJ refactoring pass of :mod:`repro.opt`.

The implementation follows the standard *priority cuts* scheme: every node
keeps at most ``max_cuts`` cuts of at most ``k`` leaves, obtained by merging
the cut sets of its fanins; the trivial cut ``{node}`` is always kept (last)
and counts against the bound.  Dominated cuts — cuts whose leaf set is a
strict superset of another cut's leaves at the same node — are filtered out
before the priority truncation: they can never lead to a better cover and
would otherwise crowd useful cuts out of the bounded priority list.

Truth-table extraction has two paths: :func:`cut_truth_table_reference`
walks one cone per cut through the :class:`LogicNetwork` protocol on big
integers (the oracle), while :func:`cut_truth_tables` simulates *all* cuts
of a batch column-parallel over the whole network in one NumPy value
matrix — the representation the LUT covering uses, since the per-cut cones
of a priority-cut enumeration are tiny (a handful of nodes) and the fixed
per-cut Python overhead, not the cone walks, dominates the big-int path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.logic.lits import lit_is_compl, lit_node
from repro.logic.network import LogicNetwork
from repro.logic.truth_table import tt_mask, tt_var, tt_var_words

__all__ = [
    "Cut",
    "enumerate_cuts",
    "cut_truth_table",
    "cut_truth_tables",
    "cut_truth_table_reference",
    "filter_dominated_cuts",
    "clear_cut_enumeration_cache",
    "cut_enumeration_cache_stats",
    "LutMapping",
    "lut_map",
]


@dataclass(frozen=True)
class Cut:
    """A cut of an AIG node: the node it covers and its leaf set."""

    root: int
    leaves: Tuple[int, ...]

    def size(self) -> int:
        """Number of leaves."""
        return len(self.leaves)


def filter_dominated_cuts(cuts: Sequence[Cut]) -> List[Cut]:
    """Remove dominated cuts, preserving the input order.

    A cut is *dominated* when another cut of the same node has a strict
    subset of its leaves: every cover using the dominated cut could use the
    dominating one instead, with the same or fewer dependencies.  Identical
    leaf sets are kept once (the first occurrence wins).
    """
    kept: List[Cut] = []
    kept_leaves: List[Set[int]] = []
    for cut in cuts:
        leaves = set(cut.leaves)
        if any(other <= leaves for other in kept_leaves):
            continue
        # A later cut never dominates an earlier one under the (size, ...)
        # priority order, but the helper must not rely on its input being
        # sorted — drop any earlier cut this one dominates.
        survivors = [
            (kept_cut, kept_set)
            for kept_cut, kept_set in zip(kept, kept_leaves)
            if not leaves < kept_set
        ]
        kept = [cut_ for cut_, _ in survivors] + [cut]
        kept_leaves = [set_ for _, set_ in survivors] + [leaves]
    return kept


# ---------------------------------------------------------------------------
# Incremental cut enumeration
#
# Optimisation pipelines re-enumerate near-identical networks over and over:
# every xmg_refactor invocation of an iterated pipeline sees the previous
# iteration's network with, at most, a few rewritten windows.  A node's cut
# set depends only on the cut sets of its fanins, so two densely-indexed
# networks that agree on a structural prefix (same fanin literals, node for
# node, in topological order) have identical cut sets over that prefix.  The
# small cache below keeps the last few enumerations (keyed by the
# (k, max_cuts, selection) parameters) and reuses the longest matching
# prefix, recomputing only from the first structurally-changed node on —
# i.e. invalidation is exactly "everything at and above the first level a
# rewrite touched".
# ---------------------------------------------------------------------------

_ENUM_CACHE_SIZE = 4

#: Cached enumerations, newest last.  Each entry is
#: ``(params, signatures, cuts, best_area)`` where ``signatures[node]`` is
#: the node's fanin-literal tuple (or the PI marker) and ``cuts``/
#: ``best_area`` are the per-node results, list-indexed by node.
_ENUM_CACHE: List[Tuple[Tuple, List, List, List]] = []

_ENUM_STATS = {"hits": 0, "misses": 0, "nodes_reused": 0, "nodes_computed": 0}

_PI_SIGNATURE = ("pi",)


def clear_cut_enumeration_cache() -> None:
    """Drop all cached cut enumerations and reset the statistics."""
    _ENUM_CACHE.clear()
    for key in _ENUM_STATS:
        _ENUM_STATS[key] = 0


def cut_enumeration_cache_stats() -> Dict[str, int]:
    """Counters of the structural-prefix enumeration cache.

    ``hits`` counts calls that reused a non-empty prefix, ``misses`` calls
    that enumerated from scratch; ``nodes_reused``/``nodes_computed`` count
    per-node work avoided and performed.
    """
    return dict(_ENUM_STATS)


def _network_signatures(network: LogicNetwork) -> Optional[List]:
    """Per-node structural signatures, or ``None`` if not densely indexed."""
    node_list = list(network.nodes())
    if node_list != list(range(len(node_list))):
        return None
    signatures: List = [None] * len(node_list)
    for node in node_list:
        if network.is_gate(node):
            signatures[node] = tuple(network.fanins(node))
        elif network.is_pi(node):
            signatures[node] = _PI_SIGNATURE
    return signatures


def enumerate_cuts(
    network: LogicNetwork, k: int = 4, max_cuts: int = 8, selection: str = "depth"
) -> Dict[int, List[Cut]]:
    """Enumerate up to ``max_cuts`` k-feasible cuts for every node.

    ``network`` is any :class:`~repro.logic.network.LogicNetwork` (AIG or
    XMG); cut merging combines one cut per fanin, however many fanins the
    gate has.  Returns a mapping from node index to its cut list.  The
    first cut of every node is its *best* cut under the ``selection``
    policy; the trivial cut is always included last and counts against the
    ``max_cuts`` bound, so no node ever carries more than ``max_cuts``
    cuts.  Dominated cuts (leaf supersets of another cut at the same node)
    are filtered before the priority truncation.

    ``selection`` orders each node's priority list:

    * ``"depth"`` (default) — by (size, estimated depth): small shallow
      cuts first, the historical order the XMG mapping builds on,
    * ``"area"``  — by *area flow*: the estimated number of LUTs a cover
      through the cut instantiates (``1 +`` the best-cut areas of its
      leaves), so the best cut genuinely minimises LUT count and the LUT
      size ``k`` becomes an area knob.

    Densely-indexed networks go through the structural-prefix cache (see
    the module notes above): the longest prefix agreeing node-for-node with
    a recently enumerated network reuses that enumeration's cut lists, and
    only nodes from the first structural difference on are recomputed.  The
    returned per-node cut lists may be shared with other enumerations and
    must not be mutated.
    """
    if k < 2:
        raise ValueError("cut size must be at least 2")
    if max_cuts < 1:
        raise ValueError("max_cuts must be at least 1")
    if selection not in ("depth", "area"):
        raise ValueError(
            f"unknown cut selection policy {selection!r}; "
            "expected 'depth' or 'area'"
        )
    signatures = _network_signatures(network)
    params = (k, max_cuts, selection)
    prefix = 0
    cached_cuts: Optional[List] = None
    cached_area: Optional[List] = None
    entry_index = -1
    if signatures is not None:
        for index, (entry_params, entry_sigs, entry_cuts, entry_area) in enumerate(
            _ENUM_CACHE
        ):
            if entry_params != params:
                continue
            limit = min(len(entry_sigs), len(signatures))
            common = 0
            while common < limit and entry_sigs[common] == signatures[common]:
                common += 1
            if common > prefix:
                prefix = common
                cached_cuts, cached_area = entry_cuts, entry_area
                entry_index = index
        _ENUM_STATS["hits" if prefix else "misses"] += 1
        _ENUM_STATS["nodes_reused"] += prefix

    cuts: Dict[int, List[Cut]] = {0: [Cut(0, ())]}
    levels = network.levels()
    # Area flow of the best cut of every processed node (PIs cost nothing).
    best_area: Dict[int, int] = {0: 0}
    for node in range(1, prefix):
        node_cuts = cached_cuts[node]
        if node_cuts is not None:
            cuts[node] = node_cuts
            best_area[node] = cached_area[node]

    for node in network.nodes():
        if node < prefix or node == 0:
            continue
        if signatures is not None:
            _ENUM_STATS["nodes_computed"] += 1
        if network.is_pi(node):
            cuts[node] = [Cut(node, (node,))]
            best_area[node] = 0
            continue
        fanin_nodes = [lit_node(f) for f in network.fanins(node)]
        merged: Set[Tuple[int, ...]] = set()
        for combo in iter_product(*(cuts[f] for f in fanin_nodes)):
            leaf_set: Set[int] = set()
            for cut_ in combo:
                leaf_set.update(cut_.leaves)
            leaves = tuple(sorted(leaf_set))
            if len(leaves) <= k:
                merged.add(leaves)
        candidates = [Cut(node, leaves) for leaves in merged]
        if selection == "area":
            candidates.sort(
                key=lambda cut: (
                    1 + sum(best_area[leaf] for leaf in cut.leaves),
                    cut.size(),
                    max((levels[leaf] for leaf in cut.leaves), default=0),
                    cut.leaves,
                )
            )
        else:
            candidates.sort(
                key=lambda cut: (
                    cut.size(),
                    max((levels[leaf] for leaf in cut.leaves), default=0),
                    cut.leaves,
                )
            )
        # The trivial cut participates in dominance filtering and counts
        # against the bound: appended last, it keeps its documented
        # position without ever displacing the best cut, and a node ends
        # up with at most max_cuts cuts (not max_cuts + 1).
        trivial = Cut(node, (node,))
        selected = filter_dominated_cuts(candidates + [trivial])
        if len(selected) > max_cuts:
            non_trivial = [c for c in selected if c.leaves != (node,)]
            selected = non_trivial[: max_cuts - 1] + [trivial]
        cuts[node] = selected
        best = selected[0]
        best_area[node] = (
            1 + sum(best_area[leaf] for leaf in best.leaves)
            if best.leaves != (node,)
            else 1
        )

    if signatures is not None:
        num = len(signatures)
        if (
            entry_index >= 0
            and prefix == num
            and len(_ENUM_CACHE[entry_index][1]) == num
        ):
            # Identical network re-enumerated: refresh recency only.
            _ENUM_CACHE.append(_ENUM_CACHE.pop(entry_index))
        else:
            _ENUM_CACHE.append(
                (
                    params,
                    signatures,
                    [cuts.get(n) for n in range(num)],
                    [best_area.get(n) for n in range(num)],
                )
            )
            if len(_ENUM_CACHE) > _ENUM_CACHE_SIZE:
                _ENUM_CACHE.pop(0)
    return cuts


def cut_truth_table_reference(network: LogicNetwork, cut: Cut) -> int:
    """Integer truth table of the cut root via the protocol cone walk.

    This is the original big-int implementation, kept as the reference
    oracle for the vectorised paths below (property tests and the kernel
    benchmark pin :func:`cut_truth_table` / :func:`cut_truth_tables`
    against it) and as the fallback for network classes the kernel cannot
    flatten.  Leaf ``i`` of the cut corresponds to variable ``i`` of the
    truth table.  The cone is walked with an explicit stack: a cut whose
    leaves sit right at the primary inputs (as the area-flow mapper likes
    to choose on reconvergent logic) can span a cone deeper than the
    Python recursion limit.  Node evaluation goes through
    :meth:`~repro.logic.network.LogicNetwork.eval_gate`, so AND, MAJ and
    XOR cones are all supported.
    """
    num_vars = len(cut.leaves)
    mask = tt_mask(num_vars)
    tables: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(cut.leaves):
        tables[leaf] = tt_var(i, num_vars)

    stack = [cut.root]
    while stack:
        node = stack[-1]
        if node in tables:
            stack.pop()
            continue
        if not network.is_gate(node):
            raise ValueError(
                f"node {node} is not inside the cone of cut {cut}: "
                "cut leaves do not form a proper cut"
            )
        fanins = network.fanins(node)
        pending = [
            fanin_node
            for fanin_node in (lit_node(f) for f in fanins)
            if fanin_node not in tables
        ]
        if pending:
            stack.extend(pending)
            continue
        operands = [
            tables[lit_node(f)] ^ (mask if lit_is_compl(f) else 0)
            for f in fanins
        ]
        tables[node] = network.eval_gate(node, operands) & mask
        stack.pop()

    return tables[cut.root]


# ---------------------------------------------------------------------------
# Vectorised cut simulation
#
# A priority-cut enumeration yields thousands of cuts whose cones average
# only a few nodes each, so per-cut Python overhead — dict walks, big-int
# boxing, eval_gate dispatch — dominates extraction cost.  The kernel below
# removes it by simulating *all* cuts of a batch at once: one value matrix
# of shape (nodes × cuts) holds, per column, the network simulated in the
# cut's leaf space.  Rows are permuted level-contiguously so each
# (level, gate kind) group is evaluated with three or four whole-matrix
# NumPy ops (gather fanin rows, apply complement masks, combine); before a
# level's consumers run, the leaf rows of every cut whose leaves sit at the
# previous level are overwritten with the projection patterns.  Because all
# columns share the width of the widest cut, complement masks are uniform
# words; each result is truncated to its own cut's 2**num_leaves bits at
# extraction.  Non-cone rows compute garbage, which is harmless: extraction
# reads only root rows, and every path from a root stops at overridden
# leaf rows.
# ---------------------------------------------------------------------------

_KIND_AND, _KIND_XOR, _KIND_MAJ = 0, 1, 2

#: Soft bound on the value-matrix size of one simulation chunk; batches
#: whose (nodes × cuts × words) matrix would exceed it are split.
_BATCH_BYTES_LIMIT = 1 << 26

_KERNEL_CACHE_ATTR = "_cut_kernel_cache"


class _NetworkKernel:
    """Flattened, simulation-ready view of one AIG/XMG, cached per network.

    Built once per network (node count keyed — networks are append-only,
    so an unchanged count means unchanged structure) and reused across
    batches; the per-``k`` level/group metadata is cached lazily inside.
    ``ok`` is false when the network is not a dense-indexed AIG/XMG, in
    which case callers fall back to the protocol walk.
    """

    __slots__ = (
        "ok", "num_nodes", "max_level", "lvl", "perm", "order",
        "kind_list", "fanin_lits", "_meta",
    )

    def __init__(self, network: LogicNetwork) -> None:
        self.ok = False
        self._meta: Dict[int, Any] = {}
        kind_tag = getattr(network, "network_type", None)
        if kind_tag not in ("aig", "xmg"):
            self.num_nodes = -1
            return
        nodes = network.nodes()
        node_list = list(nodes)
        num = len(node_list)
        self.num_nodes = num
        if node_list != list(range(num)):
            return

        kind_list = [-1] * num
        fanin_lits: List[Tuple[int, ...]] = [()] * num
        is_xmg = kind_tag == "xmg"
        for node in range(num):
            if not network.is_gate(node):
                continue
            fanins = tuple(network.fanins(node))
            if is_xmg:
                if network.is_maj(node):
                    kind = _KIND_MAJ
                elif network.is_xor(node):
                    kind = _KIND_XOR
                else:
                    return
            else:
                kind = _KIND_AND
            if len(fanins) != (3 if kind == _KIND_MAJ else 2):
                return
            kind_list[node] = kind
            fanin_lits[node] = fanins

        lvl = np.zeros(num, dtype=np.int64)
        for node, level in network.levels().items():
            lvl[node] = level
        # Rows sorted by (level, kind): levels are contiguous and, within
        # a level, each gate kind forms one contiguous slice.
        kind_arr = np.array(kind_list, dtype=np.int64)
        order = np.lexsort((kind_arr, lvl))
        perm = np.empty(num, dtype=np.int64)
        perm[order] = np.arange(num)

        self.lvl = lvl
        self.order = order
        self.perm = perm
        self.max_level = int(lvl.max()) if num else 0
        self.kind_list = kind_list
        self.fanin_lits = fanin_lits
        self.ok = True

    # -- per-k simulation metadata ------------------------------------------

    @staticmethod
    def _dtype_for(kmax: int) -> Tuple[Any, int]:
        """Narrowest word dtype holding a 2**kmax-bit table (+ word count)."""
        if kmax <= 3:
            return np.uint8, 1
        if kmax == 4:
            return np.uint16, 1
        if kmax == 5:
            return np.uint32, 1
        return np.uint64, max(1, 1 << (kmax - 6))

    def _sim_meta(self, kmax: int) -> Any:
        meta = self._meta.get(kmax)
        if meta is not None:
            return meta
        dtype, width = self._dtype_for(kmax)
        full = dtype(~dtype(0))
        lvl_sorted = self.lvl[self.order]
        kind_sorted = np.array(self.kind_list, dtype=np.int64)[self.order]
        groups: List[List[Tuple[int, int, int, List[np.ndarray], List[Any]]]] = [
            [] for _ in range(self.max_level + 1)
        ]
        max_group = 0
        gate_rows = np.nonzero(kind_sorted >= 0)[0]
        if gate_rows.size:
            # Split the sorted gate rows into maximal runs of equal
            # (level, kind); each run becomes one vectorised group.
            keys_lvl = lvl_sorted[gate_rows]
            keys_kind = kind_sorted[gate_rows]
            breaks = np.nonzero(
                (np.diff(keys_lvl) != 0) | (np.diff(keys_kind) != 0)
            )[0] + 1
            starts = np.concatenate(([0], breaks))
            ends = np.concatenate((breaks, [gate_rows.size]))
            for s, e in zip(starts, ends):
                rows = gate_rows[s:e]
                start, end = int(rows[0]), int(rows[-1]) + 1
                level = int(keys_lvl[s])
                kind = int(keys_kind[s])
                nodes = self.order[start:end]
                arity = 3 if kind == _KIND_MAJ else 2
                idx: List[np.ndarray] = []
                cmask: List[Any] = []
                for slot in range(arity):
                    lits = np.array(
                        [self.fanin_lits[n][slot] for n in nodes],
                        dtype=np.int64,
                    )
                    idx.append(self.perm[lits >> 1])
                    cmask.append(
                        ((lits & 1).astype(dtype) * full)[:, None]
                    )
                groups[level].append((kind, start, end, idx, cmask))
                max_group = max(max_group, end - start)
        # Leaf projection patterns: row i is variable i of the kmax-space,
        # as `width` words of `dtype`.
        if width == 1:
            vars_rows = np.array(
                [tt_var(i, kmax) for i in range(kmax)], dtype=dtype
            ).reshape(kmax, 1)
        else:
            vars_rows = np.stack(
                [tt_var_words(i, kmax) for i in range(kmax)]
            )
        # Truncation masks indexed by leaf count: a cut with ``nv`` leaves
        # keeps only its low ``2^nv`` table bits.  Single-word tables mask
        # vectorised (the dtype always fits ``tt_mask(kmax)``); multi-word
        # tables mask after big-int reassembly.
        if width == 1:
            masks: Any = np.array(
                [tt_mask(nv) for nv in range(kmax + 1)], dtype=dtype
            )
        else:
            masks = [tt_mask(nv) for nv in range(kmax + 1)]
        meta = (dtype, width, groups, max_group, vars_rows, masks)
        self._meta[kmax] = meta
        return meta

    # -- batch simulation ----------------------------------------------------

    def truth_tables(self, cuts: Sequence[Cut]) -> List[int]:
        num_cuts = len(cuts)
        if not num_cuts:
            return []
        counts = np.fromiter(
            (len(cut.leaves) for cut in cuts), np.int64, num_cuts
        )
        kmax = max(int(counts.max()), 1)
        dtype, width, _, _, _, _ = self._sim_meta(kmax)
        row_bytes = max(1, self.num_nodes) * width * np.dtype(dtype).itemsize
        chunk = max(1, _BATCH_BYTES_LIMIT // row_bytes)
        results: List[int] = []
        for start in range(0, num_cuts, chunk):
            results.extend(
                self._simulate(
                    cuts[start:start + chunk],
                    counts[start:start + chunk],
                    kmax,
                )
            )
        return results

    def _simulate(
        self, cuts: Sequence[Cut], counts: np.ndarray, kmax: int
    ) -> List[int]:
        dtype, width, groups, max_group, vars_rows, masks = self._sim_meta(
            kmax
        )
        num_cuts = len(cuts)
        roots = np.fromiter((cut.root for cut in cuts), np.int64, num_cuts)
        total = int(counts.sum())

        # One scatter triple (row, cut, pattern) per leaf instance, sorted
        # by leaf level so each level's overrides form a slice.
        leaf_node = np.fromiter(
            (leaf for cut in cuts for leaf in cut.leaves), np.int64, total
        )
        leaf_cut = np.repeat(np.arange(num_cuts), counts)
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        leaf_pos = np.arange(total) - offsets  # variable index per instance
        leaf_row = self.perm[leaf_node] if total else leaf_node
        leaf_lvl = self.lvl[leaf_node] if total else leaf_node
        by_level = np.argsort(leaf_lvl, kind="stable")
        leaf_row = leaf_row[by_level]
        leaf_cut = leaf_cut[by_level]
        leaf_pos = leaf_pos[by_level]
        bounds = np.searchsorted(
            leaf_lvl[by_level], np.arange(self.max_level + 2)
        )

        value = np.zeros((self.num_nodes, num_cuts * width), dtype=dtype)
        scratch = [
            np.empty((max_group, num_cuts * width), dtype=dtype)
            for _ in range(3)
        ] if max_group else []
        word_cols = np.arange(width)

        def scatter(level: int) -> None:
            s, e = bounds[level], bounds[level + 1]
            if e <= s:
                return
            if width == 1:
                value[leaf_row[s:e], leaf_cut[s:e]] = vars_rows[leaf_pos[s:e], 0]
            else:
                cols = leaf_cut[s:e, None] * width + word_cols
                value[leaf_row[s:e, None], cols] = vars_rows[leaf_pos[s:e]]

        scatter(0)
        for level in range(1, self.max_level + 1):
            for kind, start, end, idx, cmask in groups[level]:
                size = end - start
                out = value[start:end]
                np.take(value, idx[0], axis=0, out=out)
                out ^= cmask[0]
                op1 = scratch[0][:size]
                np.take(value, idx[1], axis=0, out=op1)
                op1 ^= cmask[1]
                if kind == _KIND_AND:
                    out &= op1
                elif kind == _KIND_XOR:
                    out ^= op1
                else:  # MAJ(a, b, c) == (a & (b ^ c)) ^ (b & c)
                    op2 = scratch[1][:size]
                    np.take(value, idx[2], axis=0, out=op2)
                    op2 ^= cmask[2]
                    mix = scratch[2][:size]
                    np.bitwise_xor(op1, op2, out=mix)
                    out &= mix
                    op1 &= op2
                    out ^= op1
            scatter(level)

        root_rows = self.perm[roots]
        if width == 1:
            words = value[root_rows, np.arange(num_cuts)]
            words &= masks[counts]
            return words.tolist()
        cols = np.arange(num_cuts)[:, None] * width + word_cols
        rows = np.ascontiguousarray(value[root_rows[:, None], cols], dtype="<u8")
        return [
            int.from_bytes(rows[ci].tobytes(), "little") & masks[nv]
            for ci, nv in enumerate(counts.tolist())
        ]


def _network_kernel(network: LogicNetwork) -> Optional[_NetworkKernel]:
    """The cached :class:`_NetworkKernel` of a network (``None`` = fallback)."""
    nodes = network.nodes()
    try:
        num = len(nodes)  # type: ignore[arg-type]
    except TypeError:
        num = len(list(nodes))
    cached = getattr(network, _KERNEL_CACHE_ATTR, None)
    if isinstance(cached, _NetworkKernel) and cached.num_nodes == num:
        return cached if cached.ok else None
    kernel = _NetworkKernel(network)
    try:
        setattr(network, _KERNEL_CACHE_ATTR, kernel)
    except Exception:
        pass  # slotted/frozen network classes just rebuild per call
    return kernel if kernel.ok else None


def cut_truth_table(network: LogicNetwork, cut: Cut) -> int:
    """Integer truth table of the cut root expressed over its leaves.

    Leaf ``i`` of the cut corresponds to variable ``i`` of the truth
    table; an improper cut (leaves that do not cut the root's cone)
    raises :class:`ValueError`.  Single-cut extraction runs on the
    flattened kernel arrays (falling back to the protocol walk of
    :func:`cut_truth_table_reference` for unknown network classes); use
    :func:`cut_truth_tables` to evaluate many cuts of one network — the
    LUT covering's inner loop — column-parallel.
    """
    kernel = _network_kernel(network)
    if kernel is None:
        return cut_truth_table_reference(network, cut)
    num_vars = len(cut.leaves)
    mask = tt_mask(num_vars)
    tables: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(cut.leaves):
        tables[leaf] = tt_var(i, num_vars)

    kind_list = kernel.kind_list
    fanin_lits = kernel.fanin_lits
    num_nodes = kernel.num_nodes
    stack = [cut.root]
    while stack:
        node = stack[-1]
        if node in tables:
            stack.pop()
            continue
        kind = kind_list[node] if 0 <= node < num_nodes else -1
        if kind < 0:
            raise ValueError(
                f"node {node} is not inside the cone of cut {cut}: "
                "cut leaves do not form a proper cut"
            )
        fanins = fanin_lits[node]
        pending = [f >> 1 for f in fanins if f >> 1 not in tables]
        if pending:
            stack.extend(pending)
            continue
        a = tables[fanins[0] >> 1] ^ (mask if fanins[0] & 1 else 0)
        b = tables[fanins[1] >> 1] ^ (mask if fanins[1] & 1 else 0)
        if kind == _KIND_AND:
            tables[node] = a & b
        elif kind == _KIND_XOR:
            tables[node] = a ^ b
        else:
            c = tables[fanins[2] >> 1] ^ (mask if fanins[2] & 1 else 0)
            tables[node] = (a & (b ^ c)) ^ (b & c)
        stack.pop()

    return tables[cut.root]


def cut_truth_tables(network: LogicNetwork, cuts: Sequence[Cut]) -> List[int]:
    """Truth tables of many cuts of one network, simulated column-parallel.

    Equivalent to ``[cut_truth_table(network, c) for c in cuts]`` but the
    whole batch is evaluated in one NumPy value matrix (see the module
    notes), which is what makes :func:`lut_map` fast: per-cut cost drops
    from a big-int cone walk to a few matrix-column operations.  Cuts must
    be proper (as produced by :func:`enumerate_cuts`); unlike the
    single-cut entry point, the batch path does not diagnose improper
    cuts.  Falls back to the reference walk per cut for network classes
    the kernel cannot flatten.
    """
    cuts = list(cuts)
    if not cuts:
        return []
    kernel = _network_kernel(network)
    if kernel is None:
        return [cut_truth_table_reference(network, cut) for cut in cuts]
    return kernel.truth_tables(cuts)


@dataclass
class LutMapping:
    """Result of a LUT covering: one LUT per selected root node.

    All node indices refer to ``aig`` (the cleaned copy of the covered
    network — historically always an AIG, hence the field name; the
    :attr:`network` alias reads better for XMG covers), not to the network
    originally passed to :func:`lut_map`.
    """

    k: int
    aig: LogicNetwork
    # root node -> (leaf nodes, truth table over the leaves)
    luts: Dict[int, Tuple[Tuple[int, ...], int]] = field(default_factory=dict)
    # topological order of the LUT roots
    order: List[int] = field(default_factory=list)

    @property
    def network(self) -> LogicNetwork:
        """The covered network (alias of the historical ``aig`` field)."""
        return self.aig

    def num_luts(self) -> int:
        """Number of LUTs in the cover."""
        return len(self.luts)

    def dependencies(self, root: int) -> Tuple[int, ...]:
        """Leaves of ``root``'s LUT that are themselves LUT roots.

        Primary-input leaves carry their value on a circuit line at all
        times, so they never constrain a pebbling schedule; the returned
        tuple is exactly the set of LUTs whose values must be available
        (pebbled) for ``root`` to be computed or uncomputed.
        """
        leaves, _ = self.luts[root]
        return tuple(leaf for leaf in leaves if leaf in self.luts)

    def lut_cone(self, root: int) -> List[int]:
        """LUT roots in the transitive fanin of ``root`` (inclusive).

        Returned in topological order (node indices are topological in the
        underlying AIG).  ``root`` may be a primary input or the constant
        node, in which case the cone is empty.
        """
        if root not in self.luts:
            return []
        seen: Set[int] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.dependencies(node))
        return sorted(seen)

    def lut_levels(self) -> Dict[int, int]:
        """Logic level of every LUT in the LUT DAG (leaf LUTs at level 0)."""
        levels: Dict[int, int] = {}
        for root in self.order:
            deps = self.dependencies(root)
            levels[root] = 1 + max((levels[d] for d in deps), default=-1)
        return levels

    def lut_fanout_counts(self) -> Dict[int, int]:
        """Number of LUT DAG consumers of every LUT (POs count as consumers)."""
        counts: Dict[int, int] = {root: 0 for root in self.luts}
        for root in self.order:
            for dep in self.dependencies(root):
                counts[dep] += 1
        for po in self.aig.pos():
            node = lit_node(po)
            if node in counts:
                counts[node] += 1
        return counts

    def depth(self) -> int:
        """Number of LUT levels on the longest path to any output."""
        levels = self.lut_levels()
        return 1 + max(levels.values()) if levels else 0


def lut_map(
    network: LogicNetwork,
    k: int = 4,
    max_cuts: int = 8,
    selection: str = "depth",
    cleanup: bool = True,
) -> LutMapping:
    """Cover a logic network with k-input LUTs (greedy covering from the outputs).

    Every node first receives a *best cut* of its priority list; the cover
    is then chosen by walking backwards from the primary outputs and
    instantiating the best cut of every required node.  ``selection`` picks
    the best-cut policy:

    * ``"depth"`` (default) — small shallow cuts; many small LUTs, the
      historical behaviour the XMG mapping builds on,
    * ``"area"`` — area-flow ordering (see :func:`enumerate_cuts`): the
      cover instantiates the fewest LUTs the priority lists allow, which is
      what makes the LUT size ``k`` an actual area knob for the LUT-based
      pebbling flow and for the cut-based XMG refactoring pass.

    ``cleanup=False`` skips the initial dead-node sweep; callers passing an
    already-cleaned network (the XMG refactoring pass) avoid rebuilding it,
    which also keeps node indices stable for the structural-prefix cut
    cache.
    """
    if cleanup:
        network = network.cleanup()
    cuts = enumerate_cuts(network, k=k, max_cuts=max_cuts, selection=selection)

    best_cut: Dict[int, Cut] = {}
    for node in network.nodes():
        if network.is_gate(node):
            # Prefer non-trivial cuts; the enumeration could otherwise
            # select the trivial single-leaf cut.
            node_cuts = [c for c in cuts[node] if c.leaves != (node,)]
            if not node_cuts:
                # Only the self-cut is left: the gate's fanin arity
                # exceeds k, so no cover can express it (a cover through
                # an ancestor cut would need a non-trivial cut here too).
                # Fail loudly instead of emitting a self-referential LUT.
                raise ValueError(
                    f"cut size k={k} cannot cover node {node} with "
                    f"{len(network.fanins(node))} fanins; increase k to "
                    "at least the largest gate arity"
                )
            best_cut[node] = node_cuts[0]

    required: Set[int] = set()
    stack = [lit_node(po) for po in network.pos()]
    chosen: List[Cut] = []
    while stack:
        node = stack.pop()
        if node in required or node == 0 or network.is_pi(node):
            continue
        required.add(node)
        cut = best_cut[node]
        chosen.append(cut)
        for leaf in cut.leaves:
            stack.append(leaf)

    # One column-parallel batch instead of one big-int cone walk per LUT.
    tables = cut_truth_tables(network, chosen)
    luts: Dict[int, Tuple[Tuple[int, ...], int]] = {
        cut.root: (cut.leaves, truth) for cut, truth in zip(chosen, tables)
    }

    order = [node for node in network.nodes() if node in luts]
    return LutMapping(k=k, aig=network, luts=luts, order=order)
