"""k-feasible cut enumeration and LUT covering for AIGs.

Cut enumeration is the engine behind the ``xmglut`` analogue
(:mod:`repro.logic.xmg_mapping`): the AIG is covered by k-input LUTs and each
LUT function is then resynthesised into XOR/majority primitives.

The implementation follows the standard *priority cuts* scheme: every node
keeps at most ``max_cuts`` cuts of at most ``k`` leaves, obtained by merging
the cut sets of its fanins, plus the trivial cut ``{node}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.logic.aig import Aig, lit_is_compl, lit_node
from repro.logic.truth_table import tt_mask, tt_var

__all__ = ["Cut", "enumerate_cuts", "cut_truth_table", "LutMapping", "lut_map"]


@dataclass(frozen=True)
class Cut:
    """A cut of an AIG node: the node it covers and its leaf set."""

    root: int
    leaves: Tuple[int, ...]

    def size(self) -> int:
        """Number of leaves."""
        return len(self.leaves)


def enumerate_cuts(
    aig: Aig, k: int = 4, max_cuts: int = 8
) -> Dict[int, List[Cut]]:
    """Enumerate up to ``max_cuts`` k-feasible cuts for every node.

    Returns a mapping from node index to its cut list.  The first cut of
    every node is its *best* cut under a (size, estimated depth) order; the
    trivial cut is always included last.
    """
    if k < 2:
        raise ValueError("cut size must be at least 2")
    cuts: Dict[int, List[Cut]] = {0: [Cut(0, ())]}
    levels = aig.levels()

    for node in aig.nodes():
        if node == 0:
            continue
        if aig.is_pi(node):
            cuts[node] = [Cut(node, (node,))]
            continue
        f0, f1 = aig.fanins(node)
        n0, n1 = lit_node(f0), lit_node(f1)
        merged: Set[Tuple[int, ...]] = set()
        for cut0 in cuts[n0]:
            for cut1 in cuts[n1]:
                leaves = tuple(sorted(set(cut0.leaves) | set(cut1.leaves)))
                if len(leaves) <= k:
                    merged.add(leaves)
        candidates = [Cut(node, leaves) for leaves in merged]
        candidates.sort(
            key=lambda cut: (
                cut.size(),
                max((levels[leaf] for leaf in cut.leaves), default=0),
                cut.leaves,
            )
        )
        selected = candidates[:max_cuts]
        trivial = Cut(node, (node,))
        if trivial not in selected:
            selected.append(trivial)
        cuts[node] = selected
    return cuts


def cut_truth_table(aig: Aig, cut: Cut) -> int:
    """Integer truth table of the cut root expressed over its leaves.

    Leaf ``i`` of the cut corresponds to variable ``i`` of the truth table.
    """
    num_vars = len(cut.leaves)
    mask = tt_mask(num_vars)
    tables: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(cut.leaves):
        tables[leaf] = tt_var(i, num_vars)

    def lit_table(lit: int) -> int:
        table = compute(lit_node(lit))
        if lit_is_compl(lit):
            table ^= mask
        return table

    def compute(node: int) -> int:
        cached = tables.get(node)
        if cached is not None:
            return cached
        if not aig.is_and(node):
            raise ValueError(
                f"node {node} is not inside the cone of cut {cut}: "
                "cut leaves do not form a proper cut"
            )
        f0, f1 = aig.fanins(node)
        result = lit_table(f0) & lit_table(f1)
        tables[node] = result
        return result

    return compute(cut.root)


@dataclass
class LutMapping:
    """Result of a LUT covering: one LUT per selected root node.

    All node indices refer to ``aig`` (the cleaned copy the cover was
    computed on), not to the AIG originally passed to :func:`lut_map`.
    """

    k: int
    aig: Aig
    # root node -> (leaf nodes, truth table over the leaves)
    luts: Dict[int, Tuple[Tuple[int, ...], int]] = field(default_factory=dict)
    # topological order of the LUT roots
    order: List[int] = field(default_factory=list)

    def num_luts(self) -> int:
        """Number of LUTs in the cover."""
        return len(self.luts)


def lut_map(aig: Aig, k: int = 4, max_cuts: int = 8) -> LutMapping:
    """Cover the AIG with k-input LUTs (area-oriented greedy covering).

    Every node first receives a *best cut* (the first cut of its priority
    list); the cover is then chosen by walking backwards from the primary
    outputs and instantiating the best cut of every required node.
    """
    aig = aig.cleanup()
    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts)

    best_cut: Dict[int, Cut] = {}
    for node in aig.nodes():
        if aig.is_and(node):
            # Prefer non-trivial cuts; the enumeration sorts by size which
            # would otherwise select the trivial single-leaf cut.
            node_cuts = [c for c in cuts[node] if c.leaves != (node,)]
            best_cut[node] = node_cuts[0] if node_cuts else cuts[node][0]

    required: Set[int] = set()
    stack = [lit_node(po) for po in aig.pos()]
    luts: Dict[int, Tuple[Tuple[int, ...], int]] = {}
    while stack:
        node = stack.pop()
        if node in required or node == 0 or aig.is_pi(node):
            continue
        required.add(node)
        cut = best_cut[node]
        truth = cut_truth_table(aig, cut)
        luts[node] = (cut.leaves, truth)
        for leaf in cut.leaves:
            stack.append(leaf)

    order = [node for node in aig.nodes() if node in luts]
    return LutMapping(k=k, aig=aig, luts=luts, order=order)
