"""Sum-of-product covers: irredundant SOP computation and algebraic factoring.

These are the helpers behind the ``refactor``/``rewrite`` passes of
:mod:`repro.logic.aig_opt` (the ABC ``dc2``/``resyn2`` analogues): a cone of
logic is collapsed into a truth table, an irredundant SOP is computed with
the Minato–Morreale procedure, the SOP is factored algebraically, and the
factored form is built back into the AIG.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.logic.cube import Cube
from repro.logic.truth_table import (
    tt_cofactor0,
    tt_cofactor1,
    tt_mask,
)

__all__ = ["isop", "factor_cubes", "Expression", "expression_literal_count"]


# ---------------------------------------------------------------------------
# Irredundant sum of products (Minato-Morreale)
# ---------------------------------------------------------------------------

def isop(func: int, num_vars: int) -> List[Cube]:
    """Compute an irredundant SOP cover of ``func``.

    This is the classical Minato–Morreale recursion on the interval
    ``[lower, upper]``; here both bounds equal ``func`` because we have no
    don't cares.  Returns a list of :class:`Cube` whose disjunction equals
    the function.
    """
    cache: Dict[Tuple[int, int, int], Tuple[List[Cube], int]] = {}
    full_mask = tt_mask(num_vars)

    def rec(lower: int, upper: int, var: int) -> Tuple[List[Cube], int]:
        """Return (cover, covered_truth_table) with lower <= cover <= upper."""
        if lower == 0:
            return [], 0
        if upper == full_mask:
            return [Cube.tautology(num_vars)], full_mask
        key = (lower, upper, var)
        cached = cache.get(key)
        if cached is not None:
            return cached

        # Find a variable on which the bounds still depend.
        split = None
        for v in range(var, num_vars):
            if (
                tt_cofactor0(lower, v, num_vars) != tt_cofactor1(lower, v, num_vars)
                or tt_cofactor0(upper, v, num_vars) != tt_cofactor1(upper, v, num_vars)
            ):
                split = v
                break
        if split is None:
            # Bounds are constant over the remaining variables; lower != 0 so
            # the tautology cube suffices within this subspace.
            result: Tuple[List[Cube], int] = ([Cube.tautology(num_vars)], full_mask)
            cache[key] = result
            return result

        l0 = tt_cofactor0(lower, split, num_vars)
        l1 = tt_cofactor1(lower, split, num_vars)
        u0 = tt_cofactor0(upper, split, num_vars)
        u1 = tt_cofactor1(upper, split, num_vars)

        # Cubes needed only in the negative (resp. positive) half-space.
        cover0, covered0 = rec(l0 & ~u1 & full_mask, u0, split + 1)
        cover1, covered1 = rec(l1 & ~u0 & full_mask, u1, split + 1)

        # What remains to be covered may live in both half-spaces.
        rest0 = l0 & ~covered0 & full_mask
        rest1 = l1 & ~covered1 & full_mask
        cover2, covered2 = rec(rest0 | rest1, u0 & u1, split + 1)

        cubes = [cube.with_literal(split, False) for cube in cover0]
        cubes += [cube.with_literal(split, True) for cube in cover1]
        cubes += cover2

        var_tt = _var_table(split, num_vars)
        covered = (covered0 & ~var_tt) | (covered1 & var_tt) | covered2
        result = (cubes, covered & full_mask)
        cache[key] = result
        return result

    cover, covered = rec(func, func, 0)
    assert covered == func, "ISOP cover does not match the function"
    return cover


def _var_table(var: int, num_vars: int) -> int:
    from repro.logic.truth_table import tt_var

    return tt_var(var, num_vars)


# ---------------------------------------------------------------------------
# Algebraic factoring
# ---------------------------------------------------------------------------

# Expression trees: ("lit", var, positive) | ("and", [children]) | ("or", [children])
# | ("const", bool)
Expression = Union[Tuple[str, int, bool], Tuple[str, list], Tuple[str, bool]]


def factor_cubes(cubes: Sequence[Cube], num_vars: int) -> Expression:
    """Algebraically factor a SOP cover into an expression tree.

    The classic quick-factor recursion: pick the most frequent literal,
    divide the cover into the quotient (cubes containing the literal, with
    the literal removed) and the remainder, factor both recursively and
    combine as ``literal * factor(quotient) + factor(remainder)``.
    """
    cubes = list(cubes)
    if not cubes:
        return ("const", False)
    if any(cube.care == 0 for cube in cubes):
        return ("const", True)
    if len(cubes) == 1:
        return _cube_expression(cubes[0])

    best_literal = _most_frequent_literal(cubes)
    if best_literal is None:
        return ("or", [_cube_expression(cube) for cube in cubes])

    var, positive = best_literal
    quotient: List[Cube] = []
    remainder: List[Cube] = []
    for cube in cubes:
        has_var = bool((cube.care >> var) & 1)
        has_polarity = bool((cube.polarity >> var) & 1) == positive
        if has_var and has_polarity:
            quotient.append(cube.without_variable(var))
        else:
            remainder.append(cube)

    if len(quotient) <= 1:
        # No sharing opportunity: emit the cubes directly.
        return ("or", [_cube_expression(cube) for cube in cubes])

    factored_quotient = factor_cubes(quotient, num_vars)
    product: Expression = ("and", [("lit", var, positive), factored_quotient])
    if not remainder:
        return product
    factored_remainder = factor_cubes(remainder, num_vars)
    return ("or", [product, factored_remainder])


def _cube_expression(cube: Cube) -> Expression:
    literals = cube.literals()
    if not literals:
        return ("const", True)
    if len(literals) == 1:
        var, positive = literals[0]
        return ("lit", var, positive)
    return ("and", [("lit", var, positive) for var, positive in literals])


def _most_frequent_literal(cubes: Sequence[Cube]) -> Optional[Tuple[int, bool]]:
    counts: Dict[Tuple[int, bool], int] = {}
    for cube in cubes:
        for var, positive in cube.literals():
            key = (var, positive)
            counts[key] = counts.get(key, 0) + 1
    if not counts:
        return None
    best, best_count = max(counts.items(), key=lambda item: item[1])
    if best_count < 2:
        return None
    return best


def expression_literal_count(expr: Expression) -> int:
    """Number of literal leaves in an expression tree (a size proxy)."""
    tag = expr[0]
    if tag == "lit":
        return 1
    if tag == "const":
        return 0
    return sum(expression_literal_count(child) for child in expr[1])
