"""And-inverter graphs (AIGs).

The AIG is the central multi-level representation of the logic synthesis
level (Fig. 1 of the paper): the Verilog front-end bit-blasts into an AIG,
ABC-style optimisation scripts operate on it, and the three reversible flows
consume it (directly, collapsed into a BDD/ESOP, or mapped into an XMG).

Representation
--------------

* Node 0 is the constant FALSE.  Primary inputs and AND nodes follow.
* A *literal* is ``2*node + complement`` — literal 0 is constant 0 and
  literal 1 constant 1.
* AND nodes store two fanin literals; primary inputs store the sentinel
  ``(-1, -1)``.
* Nodes are created in topological order (fanins always have smaller node
  indices), and structural hashing guarantees that no two AND nodes have the
  same ordered fanin pair.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.logic.lits import (  # noqa: F401  (re-exported for compatibility)
    lit_is_compl,
    lit_node,
    lit_not,
    lit_not_cond,
    make_lit,
)
from repro.logic.truth_table import TruthTable, tt_mask, tt_var

__all__ = ["Aig", "lit_not", "lit_is_compl", "lit_node", "make_lit"]


class Aig:
    """A combinational and-inverter graph."""

    CONST0 = 0  # literal of the constant-0 function
    CONST1 = 1  # literal of the constant-1 function

    #: Network-type tag of the :class:`repro.logic.network.LogicNetwork`
    #: protocol (the pass manager keys pass applicability on it).
    network_type = "aig"

    def __init__(self, name: str = "aig"):
        self.name = name
        self._fanin0: List[int] = [-1]  # node 0: constant
        self._fanin1: List[int] = [-1]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []
        self._po_names: List[str] = []
        self._strash: Dict[Tuple[int, int], int] = {}

    # -- construction --------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input and return its literal."""
        node = len(self._fanin0)
        self._fanin0.append(-1)
        self._fanin1.append(-1)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return make_lit(node)

    def add_po(self, lit: int, name: Optional[str] = None) -> int:
        """Register a literal as a primary output; returns the output index."""
        self._check_lit(lit)
        self._pos.append(lit)
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")
        return len(self._pos) - 1

    def create_and(self, a: int, b: int) -> int:
        """Create (or reuse) an AND node and return its literal."""
        self._check_lit(a)
        self._check_lit(b)
        # Trivial simplifications.
        if a == self.CONST0 or b == self.CONST0:
            return self.CONST0
        if a == self.CONST1:
            return b
        if b == self.CONST1:
            return a
        if a == b:
            return a
        if a == lit_not(b):
            return self.CONST0
        if a > b:
            a, b = b, a
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanin0)
            self._fanin0.append(a)
            self._fanin1.append(b)
            self._strash[key] = node
        return make_lit(node)

    def create_or(self, a: int, b: int) -> int:
        """OR via De Morgan."""
        return lit_not(self.create_and(lit_not(a), lit_not(b)))

    def create_nand(self, a: int, b: int) -> int:
        """NAND of two literals."""
        return lit_not(self.create_and(a, b))

    def create_nor(self, a: int, b: int) -> int:
        """NOR of two literals."""
        return lit_not(self.create_or(a, b))

    def create_xor(self, a: int, b: int) -> int:
        """XOR built from three AND nodes."""
        return lit_not(
            self.create_and(
                lit_not(self.create_and(a, lit_not(b))),
                lit_not(self.create_and(lit_not(a), b)),
            )
        )

    def create_xnor(self, a: int, b: int) -> int:
        """Complemented XOR."""
        return lit_not(self.create_xor(a, b))

    def create_mux(self, sel: int, if_true: int, if_false: int) -> int:
        """Multiplexer ``sel ? if_true : if_false``."""
        return lit_not(
            self.create_and(
                lit_not(self.create_and(sel, if_true)),
                lit_not(self.create_and(lit_not(sel), if_false)),
            )
        )

    def create_maj(self, a: int, b: int, c: int) -> int:
        """Majority-of-three of three literals."""
        ab = self.create_and(a, b)
        ac = self.create_and(a, c)
        bc = self.create_and(b, c)
        return self.create_or(ab, self.create_or(ac, bc))

    def create_and_multi(self, literals: Sequence[int]) -> int:
        """Balanced conjunction of a list of literals."""
        return self._reduce_balanced(list(literals), self.create_and, self.CONST1)

    def create_or_multi(self, literals: Sequence[int]) -> int:
        """Balanced disjunction of a list of literals."""
        return self._reduce_balanced(list(literals), self.create_or, self.CONST0)

    def create_xor_multi(self, literals: Sequence[int]) -> int:
        """Balanced XOR of a list of literals."""
        return self._reduce_balanced(list(literals), self.create_xor, self.CONST0)

    def _reduce_balanced(
        self, literals: List[int], op: Callable[[int, int], int], neutral: int
    ) -> int:
        if not literals:
            return neutral
        while len(literals) > 1:
            next_level = []
            for i in range(0, len(literals) - 1, 2):
                next_level.append(op(literals[i], literals[i + 1]))
            if len(literals) % 2:
                next_level.append(literals[-1])
            literals = next_level
        return literals[0]

    # -- structure queries -----------------------------------------------------

    def num_nodes(self) -> int:
        """Number of AND nodes."""
        return len(self._fanin0) - 1 - len(self._pis)

    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pis)

    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._pos)

    def pis(self) -> List[int]:
        """Literals of the primary inputs, in creation order."""
        return [make_lit(node) for node in self._pis]

    def pos(self) -> List[int]:
        """Literals driving the primary outputs, in creation order."""
        return list(self._pos)

    def pi_names(self) -> List[str]:
        """Names of the primary inputs."""
        return list(self._pi_names)

    def po_names(self) -> List[str]:
        """Names of the primary outputs."""
        return list(self._po_names)

    def is_pi(self, node: int) -> bool:
        """True if the node is a primary input."""
        return self._fanin0[node] == -1 and node != 0

    def is_const(self, node: int) -> bool:
        """True if the node is the constant node."""
        return node == 0

    def is_and(self, node: int) -> bool:
        """True if the node is an AND node."""
        return node != 0 and self._fanin0[node] != -1

    def is_gate(self, node: int) -> bool:
        """True if the node is an internal gate (protocol alias of AND)."""
        return self.is_and(node)

    def fanins(self, node: int) -> Tuple[int, int]:
        """Fanin literals of an AND node."""
        if not self.is_and(node):
            raise ValueError(f"node {node} is not an AND node")
        return self._fanin0[node], self._fanin1[node]

    def nodes(self) -> Iterable[int]:
        """All node indices (constant, PIs and AND nodes) in topological order."""
        return range(len(self._fanin0))

    def and_nodes(self) -> List[int]:
        """Indices of all AND nodes in topological order."""
        return [n for n in range(len(self._fanin0)) if self.is_and(n)]

    def gate_nodes(self) -> List[int]:
        """Indices of all gate nodes (protocol alias of :meth:`and_nodes`)."""
        return self.and_nodes()

    def num_gates(self) -> int:
        """Number of gate nodes (protocol alias of :meth:`num_nodes`)."""
        return self.num_nodes()

    def eval_gate(self, node: int, operands: Sequence[int]) -> int:
        """Evaluate one gate on complement-adjusted operand words.

        Part of the :class:`repro.logic.network.LogicNetwork` protocol:
        ``operands`` are the fanin values (bit-parallel integer words or
        plain truth tables) with fanin complements already applied, in
        fanin order.  For an AIG this is always a binary AND.
        """
        return operands[0] & operands[1]

    def levels(self) -> Dict[int, int]:
        """Logic level of every node (PIs and constant at level 0)."""
        level = {0: 0}
        for node in self._pis:
            level[node] = 0
        for node in range(len(self._fanin0)):
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                level[node] = 1 + max(level[lit_node(f0)], level[lit_node(f1)])
        return level

    def depth(self) -> int:
        """Number of logic levels on the longest PI-to-PO path."""
        if not self._pos:
            return 0
        level = self.levels()
        return max(level[lit_node(po)] for po in self._pos)

    def fanout_counts(self) -> List[int]:
        """Number of fanouts of every node (POs count as fanouts)."""
        counts = [0] * len(self._fanin0)
        for node in range(len(self._fanin0)):
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                counts[lit_node(f0)] += 1
                counts[lit_node(f1)] += 1
        for po in self._pos:
            counts[lit_node(po)] += 1
        return counts

    def _check_lit(self, lit: int) -> None:
        node = lit_node(lit)
        if not 0 <= node < len(self._fanin0):
            raise ValueError(f"literal {lit} references unknown node {node}")

    # -- simulation -------------------------------------------------------------

    def simulate_words(self, input_words: Sequence[int], num_bits: int) -> List[int]:
        """Bit-parallel simulation with arbitrary-precision integer patterns.

        ``input_words[i]`` is the simulation pattern of primary input ``i``;
        bit ``t`` of each pattern belongs to test vector ``t`` and only the
        lowest ``num_bits`` bits are significant.  Returns the pattern of
        every primary output, masked to ``num_bits`` bits.
        """
        if len(input_words) != len(self._pis):
            raise ValueError(
                f"expected {len(self._pis)} input patterns, got {len(input_words)}"
            )
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        mask = (1 << num_bits) - 1
        values: List[int] = [0] * len(self._fanin0)

        for node, pattern in zip(self._pis, input_words):
            values[node] = pattern & mask

        def lit_value(lit: int) -> int:
            value = values[lit_node(lit)]
            if lit_is_compl(lit):
                value ^= mask
            return value

        for node in range(len(self._fanin0)):
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                values[node] = lit_value(f0) & lit_value(f1)

        return [lit_value(po) for po in self._pos]

    def simulate_minterm(self, minterm: int) -> int:
        """Evaluate the AIG on one input assignment; returns the output word."""
        values: List[bool] = [False] * len(self._fanin0)
        for i, node in enumerate(self._pis):
            values[node] = bool((minterm >> i) & 1)

        def lit_value(lit: int) -> bool:
            return values[lit_node(lit)] ^ lit_is_compl(lit)

        for node in range(len(self._fanin0)):
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                values[node] = lit_value(f0) and lit_value(f1)

        word = 0
        for j, po in enumerate(self._pos):
            if lit_value(po):
                word |= 1 << j
        return word

    def node_truth_tables(self) -> List[int]:
        """Integer truth tables (over all PIs) of every node.

        Only sensible for a moderate number of inputs (the table of each node
        has ``2**num_pis`` bits).
        """
        num_vars = len(self._pis)
        mask = tt_mask(num_vars)
        tables: List[int] = [0] * len(self._fanin0)
        for i, node in enumerate(self._pis):
            tables[node] = tt_var(i, num_vars)

        def lit_table(lit: int) -> int:
            table = tables[lit_node(lit)]
            if lit_is_compl(lit):
                table ^= mask
            return table

        for node in range(len(self._fanin0)):
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                tables[node] = lit_table(f0) & lit_table(f1)
        return tables

    def output_columns(self) -> List[int]:
        """Integer truth tables of every primary output."""
        num_vars = len(self._pis)
        mask = tt_mask(num_vars)
        tables = self.node_truth_tables()
        columns = []
        for po in self._pos:
            table = tables[lit_node(po)]
            if lit_is_compl(po):
                table ^= mask
            columns.append(table)
        return columns

    def to_truth_table(self) -> TruthTable:
        """Expand the AIG into an explicit multi-output truth table."""
        return TruthTable.from_columns(self.output_columns(), len(self._pis))

    def simulate_random(self, num_patterns: int, seed: int = 1) -> List[int]:
        """Simulate ``num_patterns`` random vectors; returns PO patterns."""
        rng = np.random.default_rng(seed)
        patterns = []
        for _ in self._pis:
            bits = rng.integers(0, 2, size=num_patterns)
            word = 0
            for t, bit in enumerate(bits):
                if bit:
                    word |= 1 << t
            patterns.append(word)
        return self.simulate_words(patterns, num_patterns)

    # -- rebuilding --------------------------------------------------------------

    def cleanup(self) -> "Aig":
        """Return a copy containing only nodes reachable from the outputs."""
        reachable = set()
        stack = [lit_node(po) for po in self._pos]
        while stack:
            node = stack.pop()
            if node in reachable or node == 0:
                continue
            reachable.add(node)
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                stack.append(lit_node(f0))
                stack.append(lit_node(f1))

        result = Aig(self.name)
        mapping: Dict[int, int] = {0: Aig.CONST0}
        for node, name in zip(self._pis, self._pi_names):
            mapping[node] = result.add_pi(name)
        for node in range(len(self._fanin0)):
            if self.is_and(node) and node in reachable:
                f0, f1 = self.fanins(node)
                new_f0 = lit_not_cond(mapping[lit_node(f0)], lit_is_compl(f0))
                new_f1 = lit_not_cond(mapping[lit_node(f1)], lit_is_compl(f1))
                mapping[node] = result.create_and(new_f0, new_f1)
        for po, name in zip(self._pos, self._po_names):
            new_lit = lit_not_cond(mapping[lit_node(po)], lit_is_compl(po))
            result.add_po(new_lit, name)
        return result

    def copy(self) -> "Aig":
        """Deep copy of the AIG (including dangling nodes)."""
        result = Aig(self.name)
        result._fanin0 = list(self._fanin0)
        result._fanin1 = list(self._fanin1)
        result._pis = list(self._pis)
        result._pi_names = list(self._pi_names)
        result._pos = list(self._pos)
        result._po_names = list(self._po_names)
        result._strash = dict(self._strash)
        return result

    # -- dunder -------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Aig(name={self.name!r}, pis={self.num_pis()}, "
            f"pos={self.num_pos()}, ands={self.num_nodes()})"
        )
