"""Cubes (product terms) over a fixed variable set.

A cube is a conjunction of literals.  It is stored as two bit masks:

* ``care`` — the variables that appear in the cube,
* ``polarity`` — for each caring variable, 1 if the literal is positive.

Bits of ``polarity`` outside ``care`` are kept at zero so that cubes compare
and hash canonically.  Cubes are value objects (immutable).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.utils.bitops import popcount

__all__ = ["Cube"]


class Cube:
    """A product term over ``num_vars`` Boolean variables."""

    __slots__ = ("num_vars", "care", "polarity")

    def __init__(self, num_vars: int, care: int, polarity: int):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        mask = (1 << num_vars) - 1
        if care & ~mask:
            raise ValueError("care mask has bits outside the variable range")
        self.num_vars = num_vars
        self.care = care
        self.polarity = polarity & care

    # -- constructors -------------------------------------------------------

    @classmethod
    def tautology(cls, num_vars: int) -> "Cube":
        """The empty product term (constant 1)."""
        return cls(num_vars, 0, 0)

    @classmethod
    def minterm(cls, num_vars: int, assignment: int) -> "Cube":
        """The cube containing exactly one minterm."""
        mask = (1 << num_vars) - 1
        return cls(num_vars, mask, assignment & mask)

    @classmethod
    def from_literals(cls, num_vars: int, literals: List[Tuple[int, bool]]) -> "Cube":
        """Build a cube from ``(variable, positive)`` pairs."""
        care = 0
        polarity = 0
        for var, positive in literals:
            if not 0 <= var < num_vars:
                raise ValueError(f"variable {var} out of range")
            if care & (1 << var):
                raise ValueError(f"variable {var} appears twice in the cube")
            care |= 1 << var
            if positive:
                polarity |= 1 << var
        return cls(num_vars, care, polarity)

    @classmethod
    def from_string(cls, pattern: str) -> "Cube":
        """Parse a PLA-style cube string, e.g. ``"1-0"``.

        Character 0 of the string is variable 0.  ``1`` is a positive
        literal, ``0`` a negative literal and ``-`` means the variable does
        not appear.
        """
        care = 0
        polarity = 0
        for var, char in enumerate(pattern):
            if char == "1":
                care |= 1 << var
                polarity |= 1 << var
            elif char == "0":
                care |= 1 << var
            elif char != "-":
                raise ValueError(f"invalid cube character {char!r}")
        return cls(len(pattern), care, polarity)

    # -- queries ------------------------------------------------------------

    def num_literals(self) -> int:
        """Number of literals in the product term."""
        return popcount(self.care)

    def literals(self) -> List[Tuple[int, bool]]:
        """List of ``(variable, positive)`` pairs in ascending variable order."""
        result = []
        for var in range(self.num_vars):
            if (self.care >> var) & 1:
                result.append((var, bool((self.polarity >> var) & 1)))
        return result

    def evaluate(self, minterm: int) -> bool:
        """Value of the cube on an input assignment."""
        return (minterm & self.care) == self.polarity

    def minterms(self) -> Iterator[int]:
        """Iterate over all minterms covered by the cube."""
        free = [v for v in range(self.num_vars) if not (self.care >> v) & 1]
        for combo in range(1 << len(free)):
            value = self.polarity
            for i, var in enumerate(free):
                if (combo >> i) & 1:
                    value |= 1 << var
            yield value

    def num_minterms(self) -> int:
        """Number of minterms covered by the cube."""
        return 1 << (self.num_vars - self.num_literals())

    def truth_table(self) -> int:
        """Single-output integer truth table of the cube."""
        result = 0
        for minterm in self.minterms():
            result |= 1 << minterm
        return result

    def distance(self, other: "Cube") -> int:
        """Exorcism distance between two cubes.

        The distance counts the variables in which the cubes differ: either
        the variable appears in only one of them, or it appears in both with
        opposite polarity.
        """
        self._check_compatible(other)
        differ_care = self.care ^ other.care
        differ_pol = (self.polarity ^ other.polarity) & self.care & other.care
        return popcount(differ_care | differ_pol)

    def intersects(self, other: "Cube") -> bool:
        """True if the two cubes share at least one minterm."""
        self._check_compatible(other)
        common = self.care & other.care
        return (self.polarity & common) == (other.polarity & common)

    def contains(self, other: "Cube") -> bool:
        """True if every minterm of ``other`` is covered by ``self``."""
        self._check_compatible(other)
        if self.care & ~other.care:
            return False
        return (other.polarity & self.care) == self.polarity

    # -- transformations ----------------------------------------------------

    def with_literal(self, var: int, positive: bool) -> "Cube":
        """Return a copy with an additional (or overwritten) literal."""
        if not 0 <= var < self.num_vars:
            raise ValueError(f"variable {var} out of range")
        care = self.care | (1 << var)
        polarity = self.polarity & ~(1 << var)
        if positive:
            polarity |= 1 << var
        return Cube(self.num_vars, care, polarity)

    def without_variable(self, var: int) -> "Cube":
        """Return a copy with the literal of ``var`` removed (if present)."""
        care = self.care & ~(1 << var)
        return Cube(self.num_vars, care, self.polarity & care)

    def merge_distance_one(self, other: "Cube") -> Optional["Cube"]:
        """Combine two cubes at exorcism distance 1 into a single cube.

        For XOR covers two cubes with distance 1 can always be replaced by a
        single cube: if the differing variable appears in both with opposite
        polarity the literal is dropped; if it appears in only one cube the
        polarity of that literal is flipped in the cube where it appears and
        the other cube is absorbed.  Returns ``None`` when the distance is
        not 1.
        """
        if self.distance(other) != 1:
            return None
        differ_care = self.care ^ other.care
        differ_pol = (self.polarity ^ other.polarity) & self.care & other.care
        if differ_pol:
            # Same variables, opposite polarity in exactly one variable:
            # a x + a x' = a  (here: a x (+) a x' = a).
            var_bit = differ_pol
            return Cube(self.num_vars, self.care & ~var_bit, self.polarity & ~var_bit)
        # The variable appears in exactly one cube.  W.l.o.g. let it appear in
        # ``self``: then  a x (+) a = a x'.
        var_bit = differ_care
        if self.care & var_bit:
            wide, narrow = other, self
        else:
            wide, narrow = self, other
        # ``narrow`` has the literal; flip its polarity.
        polarity = narrow.polarity ^ var_bit
        return Cube(self.num_vars, narrow.care, polarity)

    def _check_compatible(self, other: "Cube") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError("cubes are defined over different variable counts")

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return (
            self.num_vars == other.num_vars
            and self.care == other.care
            and self.polarity == other.polarity
        )

    def __hash__(self) -> int:
        return hash((self.num_vars, self.care, self.polarity))

    def __repr__(self) -> str:
        return f"Cube({self.to_string()!r})"

    def to_string(self) -> str:
        """PLA-style string of the cube (``1``/``0``/``-`` per variable)."""
        chars = []
        for var in range(self.num_vars):
            if not (self.care >> var) & 1:
                chars.append("-")
            elif (self.polarity >> var) & 1:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)
