"""AIG optimisation passes: the ABC ``dc2``/``resyn2`` analogues.

The paper optimises the bit-blasted designs with ABC command sequences
(``dc2`` for the BDD flow, ``satclp; sop; fx; strash; dc2`` for the ESOP
flow, repeated ``resyn2`` for the XMG flow) before handing the network to
reversible synthesis.  This module provides the same *kind* of passes:

* :func:`balance`      — depth-oriented rebalancing of AND trees,
* :func:`refactor`     — collapse fanout-free cones, recompute an irredundant
  SOP, factor it algebraically and rebuild the cone,
* :func:`rewrite`      — :func:`refactor` restricted to small cones (the
  practical effect of cut rewriting),
* :func:`dc2` / :func:`resyn2` — the script-level combinations used by the
  design flows.

All passes are purely functional: they return a new :class:`Aig` and leave
the input untouched.  Functional equivalence is preserved by construction
(and is additionally asserted by the test-suite via random simulation).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.logic.aig import Aig
from repro.logic.lits import lit_is_compl, lit_node, lit_not_cond
from repro.logic.network import collect_cone, cone_truth_table
from repro.logic.sop import Expression, expression_literal_count, factor_cubes, isop
from repro.logic.truth_table import tt_mask

__all__ = ["balance", "refactor", "rewrite", "dc2", "resyn2", "optimize_script"]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _map_lit(mapping: Dict[int, int], lit: int) -> int:
    """Translate an old-AIG literal through a node mapping."""
    return lit_not_cond(mapping[lit_node(lit)], lit_is_compl(lit))


def _materialization_roots(aig: Aig, include_complemented: bool = True) -> Set[int]:
    """Nodes that must exist as explicit nodes in the rebuilt AIG.

    A node is a root if it drives a primary output or has more than one
    fanout.  When ``include_complemented`` is true (needed by balancing,
    which can only absorb non-complemented fanins into AND trees), nodes
    referenced through a complemented edge are also roots.
    """
    fanouts = aig.fanout_counts()
    roots: Set[int] = set()
    for po in aig.pos():
        roots.add(lit_node(po))
    for node in aig.nodes():
        if not aig.is_and(node):
            continue
        if fanouts[node] > 1:
            roots.add(node)
        if include_complemented:
            for fanin in aig.fanins(node):
                if lit_is_compl(fanin) and aig.is_and(lit_node(fanin)):
                    roots.add(lit_node(fanin))
    roots.discard(0)
    return {node for node in roots if aig.is_and(node)}


# Cone collection and truth-table extraction are the protocol-level
# helpers of :mod:`repro.logic.network`, shared with the XMG passes.
_collect_cone = collect_cone
_cone_truth_table = cone_truth_table


def _build_expression(aig: Aig, expr: Expression, leaf_lits: Sequence[int]) -> int:
    """Instantiate a factored expression tree in ``aig``."""
    tag = expr[0]
    if tag == "const":
        return Aig.CONST1 if expr[1] else Aig.CONST0
    if tag == "lit":
        _, var, positive = expr
        return lit_not_cond(leaf_lits[var], not positive)
    children = [_build_expression(aig, child, leaf_lits) for child in expr[1]]
    if tag == "and":
        return aig.create_and_multi(children)
    if tag == "or":
        return aig.create_or_multi(children)
    raise ValueError(f"unknown expression tag {tag!r}")  # pragma: no cover


def _copy_structural(
    aig: Aig, new: Aig, mapping: Dict[int, int], internal: Sequence[int]
) -> None:
    """Structurally copy cone-internal nodes into the rebuilt AIG."""
    for node in internal:
        if node in mapping:
            continue
        f0, f1 = aig.fanins(node)
        mapping[node] = new.create_and(_map_lit(mapping, f0), _map_lit(mapping, f1))


def _finish(aig: Aig, new: Aig, mapping: Dict[int, int]) -> Aig:
    for po, name in zip(aig.pos(), aig.po_names()):
        new.add_po(_map_lit(mapping, po), name)
    return new.cleanup()


def _init_rebuild(aig: Aig) -> Tuple[Aig, Dict[int, int]]:
    new = Aig(aig.name)
    mapping: Dict[int, int] = {0: Aig.CONST0}
    for node, name in zip(
        [lit_node(lit) for lit in aig.pis()], aig.pi_names()
    ):
        mapping[node] = new.add_pi(name)
    return new, mapping


# ---------------------------------------------------------------------------
# Balancing
# ---------------------------------------------------------------------------

def balance(aig: Aig) -> Aig:
    """Rebuild every AND tree as a depth-balanced tree.

    Maximal fanout-free AND trees are collected and rebuilt bottom-up by
    always pairing the two shallowest operands (Huffman-style), which
    minimises the depth of the rebuilt tree.
    """
    aig = aig.cleanup()
    roots = _materialization_roots(aig)
    new, mapping = _init_rebuild(aig)
    new_level: Dict[int, int] = {0: 0}
    for node in [lit_node(lit) for lit in aig.pis()]:
        new_level[lit_node(mapping[node])] = 0

    def level_of(lit: int) -> int:
        return new_level.get(lit_node(lit), 0)

    for node in aig.nodes():
        if not aig.is_and(node) or node not in roots:
            continue
        leaves, internal = _collect_cone(aig, node, roots)
        # Collect the AND-tree leaf *literals* (an internal node contributes
        # its fanin literals; complemented edges to AND nodes were forced to
        # be roots so every leaf literal maps cleanly).
        leaf_lits: List[int] = []
        internal_set = set(internal)
        stack = [node]
        while stack:
            current = stack.pop()
            for fanin in aig.fanins(current):
                if lit_node(fanin) in internal_set and not lit_is_compl(fanin):
                    stack.append(lit_node(fanin))
                else:
                    leaf_lits.append(_map_lit(mapping, fanin))
        # Huffman-style balanced conjunction.
        operands = sorted(leaf_lits, key=level_of, reverse=True)
        while len(operands) > 1:
            a = operands.pop()
            b = operands.pop()
            combined = new.create_and(a, b)
            new_level[lit_node(combined)] = 1 + max(level_of(a), level_of(b))
            # Keep the list sorted by descending level (insert at position).
            level = new_level[lit_node(combined)]
            index = len(operands)
            while index > 0 and level_of(operands[index - 1]) < level:
                index -= 1
            operands.insert(index, combined)
        mapping[node] = operands[0] if operands else Aig.CONST1
    return _finish(aig, new, mapping)


# ---------------------------------------------------------------------------
# Refactoring / rewriting
# ---------------------------------------------------------------------------

def refactor(aig: Aig, max_leaves: int = 10) -> Aig:
    """Collapse fanout-free cones and rebuild them from factored SOPs.

    For every materialisation root whose cone (bounded by other roots) has at
    most ``max_leaves`` leaves, an irredundant SOP of the cone function and
    of its complement are computed; the smaller factored form replaces the
    cone if its estimated size does not exceed the original cone.  Larger
    cones are copied structurally.
    """
    aig = aig.cleanup()
    roots = _materialization_roots(aig, include_complemented=False)
    new, mapping = _init_rebuild(aig)

    for node in aig.nodes():
        if not aig.is_and(node) or node not in roots:
            continue
        leaves, internal = _collect_cone(aig, node, roots)
        if not leaves or len(leaves) > max_leaves:
            _copy_structural(aig, new, mapping, internal)
            continue

        truth = _cone_truth_table(aig, node, leaves, internal)
        num_vars = len(leaves)
        mask = tt_mask(num_vars)

        cover = isop(truth, num_vars)
        cover_compl = isop(truth ^ mask, num_vars)
        use_complement = len(cover_compl) < len(cover)
        chosen = cover_compl if use_complement else cover
        expr = factor_cubes(chosen, num_vars)

        # Size estimate: a factored form with L literals costs about L-1
        # two-input gates; the original cone costs len(internal) gates.
        estimated_cost = max(0, expression_literal_count(expr) - 1)
        if estimated_cost > len(internal):
            _copy_structural(aig, new, mapping, internal)
            continue

        leaf_lits = [_map_lit(mapping, leaf * 2) for leaf in leaves]
        literal = _build_expression(new, expr, leaf_lits)
        mapping[node] = lit_not_cond(literal, use_complement)
    return _finish(aig, new, mapping)


def rewrite(aig: Aig, max_leaves: int = 5) -> Aig:
    """Cut-rewriting analogue: refactoring restricted to small cones."""
    return refactor(aig, max_leaves=max_leaves)


# ---------------------------------------------------------------------------
# Scripts
# ---------------------------------------------------------------------------

def dc2(aig: Aig) -> Aig:
    """ABC ``dc2`` analogue: balance / rewrite / refactor / balance / rewrite."""
    aig = balance(aig)
    aig = rewrite(aig)
    aig = refactor(aig)
    aig = balance(aig)
    aig = rewrite(aig)
    return aig


def resyn2(aig: Aig) -> Aig:
    """ABC ``resyn2`` analogue.

    The original script is ``b; rw; rf; b; rw; rwz; b; rfz; rwz; b``; the
    zero-gain variants are approximated by additional refactor/rewrite
    passes.
    """
    aig = balance(aig)
    aig = rewrite(aig)
    aig = refactor(aig)
    aig = balance(aig)
    aig = rewrite(aig)
    aig = refactor(aig, max_leaves=12)
    aig = balance(aig)
    return aig


def optimize_script(aig: Aig, script: str = "dc2", rounds: int = 1) -> Aig:
    """Run a named optimisation script for a number of rounds.

    Legacy name-based API, kept as a thin wrapper over the pass manager
    (:mod:`repro.opt`): ``script`` is any registered pass or pipeline
    spec — the historical names ``"dc2"``, ``"resyn2"``, ``"balance"``,
    ``"rewrite"`` and ``"refactor"`` are all registered passes — and the
    best result over the rounds is returned, matching how the paper
    iterates ABC scripts "several rounds".  "Best" is lexicographic
    ``(node count, depth)``, so a depth-improving round at equal size is
    kept; unknown names raise a ``ValueError`` with a did-you-mean
    suggestion.
    """
    from repro.opt import parse_pipeline

    pipeline = parse_pipeline(f"({script})*{max(1, rounds)}")
    return pipeline.run(aig).network
