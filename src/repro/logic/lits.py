"""Shared literal encoding of every multi-level logic network.

All graph representations of the logic layer (:class:`repro.logic.aig.Aig`,
:class:`repro.logic.xmg.Xmg`) use the same literal convention, inherited
from the AIGER world:

* a *literal* is ``2 * node + complement``,
* literal ``0`` is the constant FALSE, literal ``1`` the constant TRUE,
* XOR-ing a literal with ``1`` complements it.

Historically each network module carried its own copy of these four
one-liners; they now live here once and are re-exported by the network
modules for backwards compatibility.  Keeping the encoding identical across
network types is what lets :mod:`repro.logic.network` traverse any network
uniformly and lets optimisation passes translate literals between networks
without an encoding shim.
"""

from __future__ import annotations

__all__ = ["lit_is_compl", "lit_node", "lit_not", "lit_not_cond", "make_lit"]


def make_lit(node: int, compl: bool = False) -> int:
    """Build a literal from a node index and a complement flag."""
    return (node << 1) | int(compl)


def lit_node(lit: int) -> int:
    """Node index of a literal."""
    return lit >> 1


def lit_is_compl(lit: int) -> bool:
    """True if the literal is complemented."""
    return bool(lit & 1)


def lit_not(lit: int) -> int:
    """Complement a literal."""
    return lit ^ 1


def lit_not_cond(lit: int, condition: bool) -> int:
    """Complement a literal iff ``condition`` is true."""
    return lit ^ int(condition)
