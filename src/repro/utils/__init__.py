"""Shared low-level utilities: bit manipulation and table rendering."""

from repro.utils.bitops import (
    bit_length,
    bits_to_int,
    clog2,
    int_to_bits,
    iter_minterms,
    popcount,
)
from repro.utils.tables import format_table

__all__ = [
    "bit_length",
    "bits_to_int",
    "clog2",
    "format_table",
    "int_to_bits",
    "iter_minterms",
    "popcount",
]
