"""Small bit-manipulation helpers used across the package.

All functions operate on plain Python integers (arbitrary precision) so they
can be used for bit-widths well beyond 64 bits, e.g. when bit-blasting the
``NEWTON(128)`` design.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence


def clog2(value: int) -> int:
    """Return the ceiling of ``log2(value)`` for a positive integer.

    ``clog2(1)`` is 0.  This mirrors the usual hardware-design helper and is
    used, e.g., for the minimum-garbage-line bound of Eq. (3) in the paper.
    """
    if value <= 0:
        raise ValueError(f"clog2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def bit_length(value: int) -> int:
    """Number of bits needed to represent ``value`` (at least 1)."""
    if value < 0:
        raise ValueError("bit_length is defined for non-negative values")
    return max(1, value.bit_length())


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative values")
    return bin(value).count("1")


def int_to_bits(value: int, width: int) -> List[int]:
    """Little-endian bit list (index 0 = LSB) of ``value`` with ``width`` bits."""
    if width < 0:
        raise ValueError("width must be non-negative")
    if value < 0:
        value &= (1 << width) - 1
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (little-endian bit list to integer)."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit!r} at index {i}")
        value |= bit << i
    return value


def iter_minterms(num_vars: int) -> Iterator[int]:
    """Iterate over all input assignments of ``num_vars`` variables."""
    if num_vars < 0:
        raise ValueError("num_vars must be non-negative")
    return iter(range(1 << num_vars))


def reverse_bits(value: int, width: int) -> int:
    """Reverse the ``width`` least significant bits of ``value``."""
    result = 0
    for i in range(width):
        if (value >> i) & 1:
            result |= 1 << (width - 1 - i)
    return result


def sign_extend(value: int, width: int) -> int:
    """Interpret the ``width``-bit pattern ``value`` as a two's-complement int."""
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Reduce a (possibly negative) integer to its ``width``-bit pattern."""
    return value & ((1 << width) - 1)
