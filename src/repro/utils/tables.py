"""ASCII table rendering used by the benchmark harness and examples.

The benchmark scripts print rows in the same layout as the tables in the
paper (qubits, T-count, runtime per design and bit-width), so a small
dependency-free formatter is enough.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _stringify(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if isinstance(cell, int):
        # Use thin thousands separators like the paper's tables.
        return f"{cell:,}".replace(",", " ")
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
