"""The reciprocal designs of Section III: ``INTDIV(n)`` and ``NEWTON(n)``.

Both designs compute an n-bit approximation ``y`` of the reciprocal
``1/x`` of an n-bit unsigned integer ``x``, interpreted as the fraction
``0.y1...yn`` (the integer value of ``y`` equals ``floor(2^n / x)`` for
``INTDIV`` whenever that quotient fits in n bits).

``intdiv_verilog(n)`` uses Verilog's integer division operator on
``(n+1)``-bit operands exactly as described in the paper.

``newton_verilog(n)`` implements the Newton-Raphson iteration on fixed-point
numbers.  The paper uses the signed format ``Q3.w``; because every quantity
in the algorithm is provably non-negative (the iterates converge to ``1/x'``
from below, so ``1 - x'*x_i >= 0``), the generated Verilog uses unsigned
arithmetic of the same widths.  Multiplications are performed at full
product width (operands are zero-extended explicitly) and truncated exactly
as the ``*_w`` operator of the paper prescribes.  Because the supported
Verilog subset has no ``generate`` loops, the normalisation priority encoder
and the Newton iterations are unrolled by this generator.

``newton_reference`` / ``intdiv_reference`` provide bit-exact software
models used by the test-suite and the equivalence checks of the flows.
"""

from __future__ import annotations

import math
from typing import List

from repro.utils.bitops import clog2

__all__ = [
    "intdiv_verilog",
    "newton_verilog",
    "intdiv_reference",
    "newton_reference",
    "newton_iterations",
    "reciprocal_exact",
]


def reciprocal_exact(n: int, x: int) -> float:
    """The real-valued reciprocal ``1/x`` scaled by ``2**n`` (for error checks)."""
    if x <= 0:
        raise ValueError("x must be positive")
    return (1.0 / x) * (1 << n)


def intdiv_reference(n: int, x: int) -> int:
    """Reference model of ``INTDIV(n)``: ``floor(2^n / x)`` in n bits.

    ``x = 0`` follows the division-by-zero convention of the front-end
    (all-ones quotient), truncated to n bits.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    mask = (1 << n) - 1
    if x == 0:
        return mask
    return ((1 << n) // x) & mask


def newton_iterations(n: int) -> int:
    """Number of Newton iterations used by ``NEWTON(n)`` (Section III.2)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return max(1, math.ceil(math.log2((n + 1) / math.log2(17))))


def _round_div(numerator: int, denominator: int) -> int:
    """Round-to-nearest integer division (used for the 48/17, 32/17 constants)."""
    return (numerator + denominator // 2) // denominator


def newton_reference(n: int, x: int) -> int:
    """Bit-exact software model of the generated ``NEWTON(n)`` design.

    The paper's algorithm uses signed ``Q3.w`` fixed-point numbers because
    the residual ``1 - x'*x_i`` may become (slightly) negative with the
    48/17 - 32/17*x' starting value.  The generated design keeps all
    quantities unsigned by computing the magnitude of the residual and
    conditionally adding or subtracting the correction term; this model
    mirrors that implementation bit for bit.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    mask = (1 << n) - 1
    x &= mask
    # ``x = 0`` is mathematically undefined; the model simply follows the
    # generated datapath (e = 0, x' = 0) so that it stays bit-exact.

    width_q2 = 3 + 2 * n  # Q3.2n
    q2_mask = (1 << width_q2) - 1

    e = x.bit_length()
    xp = (x << (n - e)) & ((1 << n) - 1)  # Q0.n, in [1/2, 1)

    c48 = _round_div(48 << (2 * n), 17)  # Q3.2n constant 48/17
    c32 = _round_div(32 << n, 17)  # Q3.n constant 32/17
    one = 1 << (2 * n)  # Q3.2n constant 1.0

    xi = (c48 - (c32 * xp)) & q2_mask
    for _ in range(newton_iterations(n)):
        scaled = (xp * xi) >> n  # x' * x_i in Q3.2n
        if scaled > one:
            magnitude = (scaled - one) & q2_mask
            correction = (xi * magnitude) >> (2 * n)
            xi = (xi - correction) & q2_mask
        else:
            magnitude = (one - scaled) & q2_mask
            correction = (xi * magnitude) >> (2 * n)
            xi = (xi + correction) & q2_mask

    yp = xi >> e
    return (yp >> n) & mask


def intdiv_verilog(n: int, name: str = "intdiv") -> str:
    """Verilog source of the ``INTDIV(n)`` design."""
    if n <= 0:
        raise ValueError("n must be positive")
    return f"""\
// INTDIV({n}): n-bit reciprocal via Verilog's integer division operator.
// y = floor(2^N / x) on (N+1)-bit unsigned operands, low N bits kept.
module {name} #(parameter N = {n}) (
    input  [N-1:0] x,
    output [N-1:0] y
);
    wire [N:0] dividend = {{1'b1, {{N{{1'b0}}}}}};  // 2^N
    wire [N:0] divisor  = {{1'b0, x}};
    wire [N:0] quotient = dividend / divisor;
    assign y = quotient[N-1:0];
endmodule
"""


def _priority_encoder_expression(n: int) -> str:
    """Unrolled priority encoder computing the bit length ``e`` of ``x``.

    Built from the LSB upwards so that the final expression tests the most
    significant bit first: ``x[n-1] ? n : (x[n-2] ? n-1 : ... (x[0] ? 1 : 0))``.
    """
    expression = "0"
    for i in range(n):
        expression = f"x[{i}] ? {i + 1} : ({expression})"
    return expression


def newton_verilog(n: int, name: str = "newton") -> str:
    """Verilog source of the ``NEWTON(n)`` design (unrolled)."""
    if n <= 0:
        raise ValueError("n must be positive")

    iterations = newton_iterations(n)
    width_q2 = 3 + 2 * n
    width_e = clog2(n + 1) + 1
    width_p1 = 3 * n + 4  # xp (n bits) times xi (< 2^(2n+1)) fits in 3n+1 bits
    width_p2 = 2 * width_q2 + 1  # product of two Q3.2n values

    c48 = _round_div(48 << (2 * n), 17)
    c32 = _round_div(32 << n, 17)
    one = 1 << (2 * n)

    lines: List[str] = []
    lines.append(f"// NEWTON({n}): n-bit reciprocal via Newton-Raphson iteration")
    lines.append(f"// on fixed-point numbers (Q3.{2 * n} internal precision,")
    lines.append(f"// {iterations} iterations), as described in Section III.2 of the paper.")
    lines.append(f"module {name} #(parameter N = {n}) (")
    lines.append("    input  [N-1:0] x,")
    lines.append("    output [N-1:0] y")
    lines.append(");")
    lines.append(f"    // bit length of x (priority encoder, e in [0, {n}])")
    lines.append(
        f"    wire [{width_e - 1}:0] e = {_priority_encoder_expression(n)};"
    )
    lines.append("    // normalised input x' = x / 2^e in [1/2, 1), Q0.N")
    lines.append("    wire [N-1:0] xp = x << (N - e);")
    lines.append("    // fixed-point constants")
    lines.append(f"    wire [{width_q2 - 1}:0] c48 = {width_q2}'d{c48};  // Q3.2N round(48/17)")
    lines.append(f"    wire [N+2:0] c32 = {n + 3}'d{c32};  // Q3.N round(32/17)")
    lines.append(f"    wire [{width_q2 - 1}:0] one = {width_q2}'d{one};  // Q3.2N 1.0")
    lines.append("    // initial estimate x0 = 48/17 - 32/17 * x'")
    lines.append(f"    wire [{width_q2 - 1}:0] prod0 = c32 * xp;")
    lines.append(f"    wire [{width_q2 - 1}:0] xi0 = c48 - prod0;")

    for i in range(1, iterations + 1):
        prev = f"xi{i - 1}"
        lines.append(f"    // Newton iteration {i}: xi <- xi +/- xi * |1 - x'*xi|")
        lines.append(f"    wire [{width_p1 - 1}:0] pa{i} = xp * {prev};")
        lines.append(f"    wire [{width_q2 - 1}:0] sa{i} = pa{i} >> N;")
        lines.append(f"    wire neg{i} = sa{i} > one;")
        lines.append(
            f"    wire [{width_q2 - 1}:0] t{i} = neg{i} ? (sa{i} - one) : (one - sa{i});"
        )
        lines.append(f"    wire [{width_p2 - 1}:0] pb{i} = {prev} * t{i};")
        lines.append(f"    wire [{width_q2 - 1}:0] db{i} = pb{i} >> (2 * N);")
        lines.append(
            f"    wire [{width_q2 - 1}:0] xi{i} = neg{i} ? ({prev} - db{i}) : ({prev} + db{i});"
        )

    lines.append("    // denormalise and keep the N most significant fraction bits")
    lines.append(f"    wire [{width_q2 - 1}:0] yp = xi{iterations} >> e;")
    lines.append("    assign y = yp[2*N-1:N];")
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)
