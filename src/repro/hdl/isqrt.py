"""The inverse square root ``1/sqrt(x)`` design (the paper's "future work").

Section IV of the paper points out that functions such as ``1/sqrt(x)`` or
trigonometric functions cannot be expressed with a single Verilog operator
(as ``INTDIV`` is) and therefore need a ``NEWTON``-style iterative design;
Section VI lists them as the natural next targets of the flows.  This module
implements that next target: an ``ISQRT(n)`` design built exactly like
``NEWTON(n)`` — normalisation, a linear initial guess and Newton–Raphson
iterations on fixed-point numbers — so that all three flows can be exercised
on a second non-trivial arithmetic function.

The iteration for ``y -> 1/sqrt(x')`` is ``y := y * (3 - x' * y^2) / 2``.
With the normalisation ``x' in [1/4, 1)`` and the initial guess
``y0 = 2 - x'``, every intermediate quantity is provably non-negative, so
the generated Verilog stays unsigned (same argument as for ``NEWTON``, see
DESIGN.md).
"""

from __future__ import annotations

import math
from typing import List

from repro.utils.bitops import clog2

__all__ = [
    "isqrt_verilog",
    "isqrt_reference",
    "isqrt_iterations",
    "isqrt_exact",
]


def isqrt_iterations(n: int) -> int:
    """Number of Newton iterations used by ``ISQRT(n)``.

    The linear initial guess carries a relative error of up to ~20 %, so on
    top of the quadratic convergence a small additive margin is used.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return max(2, math.ceil(math.log2(n + 1)) + 2)


def isqrt_exact(n: int, x: int) -> float:
    """The real-valued ``1/sqrt(x)`` scaled by ``2**n`` (for error checks)."""
    if x <= 0:
        raise ValueError("x must be positive")
    return (1.0 / math.sqrt(x)) * (1 << n)


def isqrt_reference(n: int, x: int) -> int:
    """Bit-exact software model of the generated ``ISQRT(n)`` design."""
    if n <= 0:
        raise ValueError("n must be positive")
    mask = (1 << n) - 1
    x &= mask
    # x = 0 is undefined; the model follows the datapath (e = 0).

    w2 = 2 * n
    width_q2 = 3 + w2
    q2_mask = (1 << width_q2) - 1

    e = x.bit_length()
    k = (e + 1) // 2
    xp = (x << (w2 - 2 * k)) & ((1 << w2) - 1) if x else 0

    two = 2 << w2
    three = 3 << w2

    y = (two - xp) & q2_mask
    for _ in range(isqrt_iterations(n)):
        # The masks mirror the declared wire widths of the generated Verilog
        # (they only matter for the undefined x = 0 corner case).
        y_squared = ((y * y) >> w2) & q2_mask
        q = ((xp * y_squared) >> w2) & q2_mask
        t = (three - q) & q2_mask
        y = ((y * t) >> (w2 + 1)) & q2_mask

    yk = y >> k
    return (yk >> n) & mask


def isqrt_verilog(n: int, name: str = "isqrt") -> str:
    """Verilog source of the ``ISQRT(n)`` design (unrolled)."""
    if n <= 0:
        raise ValueError("n must be positive")

    iterations = isqrt_iterations(n)
    w2 = 2 * n
    width_q2 = 3 + w2
    width_e = clog2(n + 1) + 1
    width_sq = 2 * width_q2 + 1   # y * y
    width_q = width_q2 + w2 + 1   # xp * y_squared
    width_p = 2 * width_q2 + 1    # y * t

    two = 2 << w2
    three = 3 << w2

    lines: List[str] = []
    lines.append(f"// ISQRT({n}): n-bit inverse square root via Newton-Raphson")
    lines.append(f"// iteration y := y*(3 - x'*y^2)/2 on Q3.{w2} fixed-point numbers")
    lines.append(f"// ({iterations} iterations).  Companion design to NEWTON({n}).")
    lines.append(f"module {name} #(parameter N = {n}) (")
    lines.append("    input  [N-1:0] x,")
    lines.append("    output [N-1:0] y")
    lines.append(");")
    # Priority encoder for the bit length of x.
    expression = "0"
    for i in range(n):
        expression = f"x[{i}] ? {i + 1} : ({expression})"
    lines.append(f"    wire [{width_e - 1}:0] e = {expression};")
    lines.append("    // even normalisation exponent: x' = x / 2^(2k) in [1/4, 1)")
    lines.append(f"    wire [{width_e - 1}:0] k = (e + 1) >> 1;")
    lines.append(f"    wire [{w2 - 1}:0] xp = x << (2 * N - (k << 1));")
    lines.append(f"    wire [{width_q2 - 1}:0] two = {width_q2}'d{two};")
    lines.append(f"    wire [{width_q2 - 1}:0] three = {width_q2}'d{three};")
    lines.append("    // initial guess y0 = 2 - x'")
    lines.append(f"    wire [{width_q2 - 1}:0] y0 = two - xp;")

    for i in range(1, iterations + 1):
        prev = f"y{i - 1}"
        lines.append(f"    // Newton iteration {i}")
        lines.append(f"    wire [{width_sq - 1}:0] sq{i} = {prev} * {prev};")
        lines.append(f"    wire [{width_q2 - 1}:0] ys{i} = sq{i} >> (2 * N);")
        lines.append(f"    wire [{width_q - 1}:0] qp{i} = xp * ys{i};")
        lines.append(f"    wire [{width_q2 - 1}:0] q{i} = qp{i} >> (2 * N);")
        lines.append(f"    wire [{width_q2 - 1}:0] t{i} = three - q{i};")
        lines.append(f"    wire [{width_p - 1}:0] pr{i} = {prev} * t{i};")
        lines.append(f"    wire [{width_q2 - 1}:0] y{i} = pr{i} >> (2 * N + 1);")

    lines.append("    // denormalise by 2^-k and keep the N most significant fraction bits")
    lines.append(f"    wire [{width_q2 - 1}:0] yk = y{iterations} >> k;")
    lines.append("    assign y = yk[2*N-1:N];")
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)
