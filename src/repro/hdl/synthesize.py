"""Convenience wrappers: Verilog source straight to an and-inverter graph."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.hdl.bitblast import bitblast
from repro.hdl.designs import intdiv_verilog, newton_verilog
from repro.hdl.elaborator import elaborate
from repro.hdl.netlist import WordNetlist
from repro.hdl.parser import parse_verilog
from repro.logic.aig import Aig

__all__ = ["synthesize_verilog", "synthesize_to_netlist", "synthesize_reciprocal_design"]


def synthesize_to_netlist(
    source: str, parameters: Optional[Dict[str, int]] = None
) -> WordNetlist:
    """Parse and elaborate Verilog source into a word-level netlist."""
    module = parse_verilog(source)
    return elaborate(module, parameters)


def synthesize_verilog(
    source: str, parameters: Optional[Dict[str, int]] = None
) -> Aig:
    """Parse, elaborate and bit-blast Verilog source into an AIG."""
    return bitblast(synthesize_to_netlist(source, parameters))


def synthesize_reciprocal_design(design: str, n: int) -> Tuple[str, Aig]:
    """Generate and synthesise one of the paper's reciprocal designs.

    ``design`` is ``"intdiv"`` or ``"newton"``; returns the generated Verilog
    source together with the bit-blasted AIG.
    """
    design = design.lower()
    if design == "intdiv":
        source = intdiv_verilog(n)
    elif design == "newton":
        source = newton_verilog(n)
    else:
        raise ValueError(f"unknown design {design!r} (expected 'intdiv' or 'newton')")
    return source, synthesize_verilog(source)
