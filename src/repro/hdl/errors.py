"""Exception types raised by the Verilog front-end."""

from __future__ import annotations

__all__ = ["HdlError", "LexerError", "ParserError", "ElaborationError"]


class HdlError(Exception):
    """Base class for all front-end errors."""


class LexerError(HdlError):
    """Raised when the character stream cannot be tokenised."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"lexer error at {line}:{column}: {message}")
        self.line = line
        self.column = column


class ParserError(HdlError):
    """Raised when the token stream cannot be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"parse error{location}: {message}")
        self.line = line
        self.column = column


class ElaborationError(HdlError):
    """Raised when a parsed design cannot be elaborated."""
