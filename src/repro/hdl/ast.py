"""Abstract syntax tree of the supported Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Expression",
    "Number",
    "Identifier",
    "UnaryOp",
    "BinaryOp",
    "TernaryOp",
    "Concat",
    "Repeat",
    "BitSelect",
    "PartSelect",
    "Range",
    "PortDeclaration",
    "NetDeclaration",
    "ParameterDeclaration",
    "ContinuousAssign",
    "Module",
]


class Expression:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Number(Expression):
    """A literal number with an optional explicit width."""

    value: int
    width: Optional[int] = None
    base: str = "d"

    def __str__(self) -> str:
        if self.width is None:
            return str(self.value)
        return f"{self.width}'{self.base}{self.value:x}" if self.base == "h" else (
            f"{self.width}'d{self.value}"
        )


@dataclass(frozen=True)
class Identifier(Expression):
    """A reference to a named signal or parameter."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operator: ``~ ! - + & | ^``."""

    op: str
    operand: Expression

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator."""

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class TernaryOp(Expression):
    """The conditional operator ``cond ? then : else``."""

    condition: Expression
    if_true: Expression
    if_false: Expression

    def __str__(self) -> str:
        return f"({self.condition} ? {self.if_true} : {self.if_false})"


@dataclass(frozen=True)
class Concat(Expression):
    """A concatenation ``{a, b, c}`` (left-most part is most significant)."""

    parts: Tuple[Expression, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(str(p) for p in self.parts) + "}"


@dataclass(frozen=True)
class Repeat(Expression):
    """A replication ``{count{expr}}``."""

    count: Expression
    value: Expression

    def __str__(self) -> str:
        return f"{{{self.count}{{{self.value}}}}}"


@dataclass(frozen=True)
class BitSelect(Expression):
    """A single-bit select ``signal[index]``."""

    signal: Expression
    index: Expression

    def __str__(self) -> str:
        return f"{self.signal}[{self.index}]"


@dataclass(frozen=True)
class PartSelect(Expression):
    """A constant part select ``signal[msb:lsb]``."""

    signal: Expression
    msb: Expression
    lsb: Expression

    def __str__(self) -> str:
        return f"{self.signal}[{self.msb}:{self.lsb}]"


@dataclass(frozen=True)
class Range:
    """A declaration range ``[msb:lsb]``."""

    msb: Expression
    lsb: Expression


@dataclass
class PortDeclaration:
    """A module port (``input``/``output``) with an optional range."""

    direction: str  # "input" | "output"
    name: str
    range: Optional[Range] = None


@dataclass
class NetDeclaration:
    """A ``wire`` declaration (optionally with an initial assignment)."""

    name: str
    range: Optional[Range] = None
    value: Optional[Expression] = None


@dataclass
class ParameterDeclaration:
    """A ``parameter``/``localparam`` declaration."""

    name: str
    value: Expression
    local: bool = False


@dataclass
class ContinuousAssign:
    """A continuous assignment ``assign lhs = rhs``."""

    target: Expression
    value: Expression


@dataclass
class Module:
    """A parsed Verilog module."""

    name: str
    ports: List[PortDeclaration] = field(default_factory=list)
    parameters: List[ParameterDeclaration] = field(default_factory=list)
    nets: List[NetDeclaration] = field(default_factory=list)
    assigns: List[ContinuousAssign] = field(default_factory=list)

    def port(self, name: str) -> PortDeclaration:
        """Look up a port by name."""
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"module {self.name} has no port {name!r}")

    def inputs(self) -> List[PortDeclaration]:
        """All input ports, in declaration order."""
        return [p for p in self.ports if p.direction == "input"]

    def outputs(self) -> List[PortDeclaration]:
        """All output ports, in declaration order."""
        return [p for p in self.ports if p.direction == "output"]
