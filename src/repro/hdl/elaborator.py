"""Elaboration: parsed Verilog module to word-level netlist.

The elaborator resolves parameters, computes signal widths, checks that the
design is purely combinational and acyclic, and lowers every expression into
:class:`repro.hdl.netlist.WordNetlist` operations.

Width and sign semantics
------------------------

The supported subset is unsigned-only.  Expression widths follow a
documented simplification of the IEEE 1364 rules:

* context-determined operators (``+ - * / % & | ^ ~ ?:`` and the left
  operand of shifts) are evaluated at the maximum of their operands'
  self-determined widths and the context width imposed by the assignment
  target,
* comparisons evaluate their operands at the maximum of the two operand
  widths and produce one bit,
* concatenations, replications, selects, reductions and shift amounts are
  self-determined,
* assignment targets truncate or zero-extend the right-hand side.

These rules coincide with the standard for all expressions appearing in the
``INTDIV``/``NEWTON`` designs (which widen operands explicitly wherever the
full precision of a product or sum is needed).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.hdl.ast import (
    BinaryOp,
    BitSelect,
    Concat,
    Expression,
    Identifier,
    Module,
    Number,
    PartSelect,
    Repeat,
    TernaryOp,
    UnaryOp,
)
from repro.hdl.errors import ElaborationError
from repro.hdl.netlist import WordNetlist

__all__ = ["elaborate"]


_DEFAULT_NUMBER_WIDTH = 32


class _Elaborator:
    def __init__(self, module: Module, parameter_overrides: Optional[Dict[str, int]] = None):
        self.module = module
        self.netlist = WordNetlist(module.name)
        self.parameters: Dict[str, int] = {}
        self.signal_widths: Dict[str, int] = {}
        self.drivers: Dict[str, Expression] = {}
        self.signal_values: Dict[str, int] = {}
        self._in_progress: Set[str] = set()
        self._overrides = dict(parameter_overrides or {})

    # -- top level -------------------------------------------------------------

    def run(self) -> WordNetlist:
        self._resolve_parameters()
        self._declare_signals()
        self._collect_drivers()

        for port in self.module.inputs():
            self.signal_values[port.name] = self.netlist.add_input(
                port.name, self.signal_widths[port.name]
            )

        for port in self.module.outputs():
            value = self._signal_value(port.name)
            self.netlist.add_output(port.name, value)
        return self.netlist

    # -- parameters -------------------------------------------------------------

    def _resolve_parameters(self) -> None:
        for declaration in self.module.parameters:
            if declaration.name in self._overrides and not declaration.local:
                self.parameters[declaration.name] = self._overrides[declaration.name]
            else:
                self.parameters[declaration.name] = self._const_eval(declaration.value)
        unknown = set(self._overrides) - {
            p.name for p in self.module.parameters if not p.local
        }
        if unknown:
            raise ElaborationError(
                f"unknown parameter override(s): {', '.join(sorted(unknown))}"
            )

    def _const_eval(self, expr: Expression) -> int:
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Identifier):
            if expr.name in self.parameters:
                return self.parameters[expr.name]
            raise ElaborationError(
                f"identifier {expr.name!r} is not a constant parameter"
            )
        if isinstance(expr, UnaryOp):
            value = self._const_eval(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return int(value == 0)
            raise ElaborationError(f"unsupported constant unary operator {expr.op!r}")
        if isinstance(expr, BinaryOp):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            operators = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b if b else 0,
                "%": lambda a, b: a % b if b else 0,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "<": lambda a, b: int(a < b),
                "<=": lambda a, b: int(a <= b),
                ">": lambda a, b: int(a > b),
                ">=": lambda a, b: int(a >= b),
                "==": lambda a, b: int(a == b),
                "!=": lambda a, b: int(a != b),
                "&": lambda a, b: a & b,
                "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
                "&&": lambda a, b: int(bool(a) and bool(b)),
                "||": lambda a, b: int(bool(a) or bool(b)),
            }
            if expr.op not in operators:
                raise ElaborationError(
                    f"unsupported constant binary operator {expr.op!r}"
                )
            return operators[expr.op](left, right)
        if isinstance(expr, TernaryOp):
            return (
                self._const_eval(expr.if_true)
                if self._const_eval(expr.condition)
                else self._const_eval(expr.if_false)
            )
        raise ElaborationError(f"expression {expr} is not constant")

    # -- signals -------------------------------------------------------------

    def _range_width(self, declaration_name: str, rng) -> int:
        if rng is None:
            return 1
        msb = self._const_eval(rng.msb)
        lsb = self._const_eval(rng.lsb)
        if lsb != 0:
            raise ElaborationError(
                f"signal {declaration_name!r}: only [msb:0] ranges are supported"
            )
        if msb < 0:
            raise ElaborationError(f"signal {declaration_name!r} has negative msb")
        return msb + 1

    def _declare_signals(self) -> None:
        for port in self.module.ports:
            if port.direction not in ("input", "output"):
                raise ElaborationError(
                    f"port {port.name!r} has no direction declaration"
                )
            self.signal_widths[port.name] = self._range_width(port.name, port.range)
        for net in self.module.nets:
            if net.name in self.signal_widths:
                raise ElaborationError(f"signal {net.name!r} declared twice")
            self.signal_widths[net.name] = self._range_width(net.name, net.range)

    def _collect_drivers(self) -> None:
        for net in self.module.nets:
            if net.value is not None:
                self.drivers[net.name] = net.value
        for assign in self.module.assigns:
            target = assign.target
            if not isinstance(target, Identifier):
                raise ElaborationError(
                    "only whole-identifier assignment targets are supported, "
                    f"got {target}"
                )
            if target.name not in self.signal_widths:
                raise ElaborationError(f"assignment to undeclared signal {target.name!r}")
            if target.name in self.drivers:
                raise ElaborationError(f"signal {target.name!r} has multiple drivers")
            self.drivers[target.name] = assign.value
        input_names = {p.name for p in self.module.inputs()}
        driven_inputs = input_names & set(self.drivers)
        if driven_inputs:
            raise ElaborationError(
                f"input port(s) may not be assigned: {', '.join(sorted(driven_inputs))}"
            )

    def _signal_value(self, name: str) -> int:
        if name in self.signal_values:
            return self.signal_values[name]
        if name in self._in_progress:
            raise ElaborationError(f"combinational cycle through signal {name!r}")
        if name not in self.drivers:
            raise ElaborationError(f"signal {name!r} is never assigned")
        self._in_progress.add(name)
        width = self.signal_widths[name]
        value = self._elaborate(self.drivers[name], width)
        value = self.netlist.add_resize(value, width)
        self._in_progress.discard(name)
        self.signal_values[name] = value
        return value

    # -- expression widths --------------------------------------------------------

    def _self_width(self, expr: Expression) -> int:
        if isinstance(expr, Number):
            if expr.width is not None:
                return expr.width
            return max(_DEFAULT_NUMBER_WIDTH, max(1, expr.value.bit_length()))
        if isinstance(expr, Identifier):
            if expr.name in self.signal_widths:
                return self.signal_widths[expr.name]
            if expr.name in self.parameters:
                value = self.parameters[expr.name]
                return max(_DEFAULT_NUMBER_WIDTH, max(1, value.bit_length()))
            raise ElaborationError(f"unknown identifier {expr.name!r}")
        if isinstance(expr, UnaryOp):
            if expr.op in ("&", "|", "^", "!"):
                return 1
            return self._self_width(expr.operand)
        if isinstance(expr, BinaryOp):
            if expr.op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||"):
                return 1
            if expr.op in ("<<", ">>", "<<<", ">>>"):
                return self._self_width(expr.left)
            return max(self._self_width(expr.left), self._self_width(expr.right))
        if isinstance(expr, TernaryOp):
            return max(self._self_width(expr.if_true), self._self_width(expr.if_false))
        if isinstance(expr, Concat):
            return sum(self._self_width(part) for part in expr.parts)
        if isinstance(expr, Repeat):
            count = self._const_eval(expr.count)
            if count <= 0:
                raise ElaborationError("replication count must be positive")
            return count * self._self_width(expr.value)
        if isinstance(expr, BitSelect):
            return 1
        if isinstance(expr, PartSelect):
            msb = self._const_eval(expr.msb)
            lsb = self._const_eval(expr.lsb)
            if msb < lsb:
                raise ElaborationError(f"part select [{msb}:{lsb}] has msb < lsb")
            return msb - lsb + 1
        raise ElaborationError(f"unsupported expression {expr!r}")

    # -- expression elaboration ------------------------------------------------------

    def _elaborate(self, expr: Expression, context: int) -> int:
        """Lower ``expr`` to a netlist value of width ``max(self, context)``."""
        net = self.netlist

        if isinstance(expr, Number):
            width = max(self._self_width(expr), context)
            return net.add_const(expr.value, width)

        if isinstance(expr, Identifier):
            if expr.name in self.parameters:
                width = max(self._self_width(expr), context)
                return net.add_const(self.parameters[expr.name], width)
            value = self._signal_value(expr.name)
            return net.add_extend(value, max(net.width_of(value), context))

        if isinstance(expr, UnaryOp):
            return self._elaborate_unary(expr, context)

        if isinstance(expr, BinaryOp):
            return self._elaborate_binary(expr, context)

        if isinstance(expr, TernaryOp):
            width = max(self._self_width(expr), context)
            condition = self._elaborate(expr.condition, 1)
            if_true = net.add_resize(self._elaborate(expr.if_true, width), width)
            if_false = net.add_resize(self._elaborate(expr.if_false, width), width)
            return net.add_mux(condition, if_true, if_false)

        if isinstance(expr, Concat):
            parts = [self._elaborate(part, self._self_width(part)) for part in expr.parts]
            parts = [
                net.add_resize(value, self._self_width(part))
                for value, part in zip(parts, expr.parts)
            ]
            result = net.add_concat(parts)
            return net.add_extend(result, max(net.width_of(result), context))

        if isinstance(expr, Repeat):
            count = self._const_eval(expr.count)
            width = self._self_width(expr.value)
            value = net.add_resize(self._elaborate(expr.value, width), width)
            result = net.add_concat([value] * count)
            return net.add_extend(result, max(net.width_of(result), context))

        if isinstance(expr, BitSelect):
            return self._elaborate_bit_select(expr, context)

        if isinstance(expr, PartSelect):
            msb = self._const_eval(expr.msb)
            lsb = self._const_eval(expr.lsb)
            base = self._elaborate(expr.signal, self._self_width(expr.signal))
            if msb >= self.netlist.width_of(base):
                raise ElaborationError(
                    f"part select [{msb}:{lsb}] exceeds width of {expr.signal}"
                )
            result = net.add_slice(base, lsb, msb - lsb + 1)
            return net.add_extend(result, max(net.width_of(result), context))

        raise ElaborationError(f"unsupported expression {expr!r}")

    def _elaborate_unary(self, expr: UnaryOp, context: int) -> int:
        net = self.netlist
        if expr.op in ("~", "-", "+"):
            width = max(self._self_width(expr.operand), context)
            operand = net.add_resize(self._elaborate(expr.operand, width), width)
            if expr.op == "~":
                return net.add_unary("not", operand)
            if expr.op == "-":
                return net.add_unary("neg", operand)
            return operand
        # Reductions and logical not are self-determined, 1-bit results.
        operand = self._elaborate(expr.operand, self._self_width(expr.operand))
        kinds = {"&": "reduce_and", "|": "reduce_or", "^": "reduce_xor", "!": "logic_not"}
        if expr.op not in kinds:
            raise ElaborationError(f"unsupported unary operator {expr.op!r}")
        result = net.add_unary(kinds[expr.op], operand)
        return net.add_extend(result, max(1, context))

    def _elaborate_binary(self, expr: BinaryOp, context: int) -> int:
        net = self.netlist
        op = expr.op

        if op in ("&&", "||"):
            left = self._elaborate(expr.left, self._self_width(expr.left))
            right = self._elaborate(expr.right, self._self_width(expr.right))
            kind = "logic_and" if op == "&&" else "logic_or"
            result = net.add_logic_binary(kind, left, right)
            return net.add_extend(result, max(1, context))

        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            width = max(self._self_width(expr.left), self._self_width(expr.right))
            left = net.add_resize(self._elaborate(expr.left, width), width)
            right = net.add_resize(self._elaborate(expr.right, width), width)
            kinds = {
                "==": "eq",
                "===": "eq",
                "!=": "ne",
                "!==": "ne",
                "<": "lt",
                "<=": "le",
                ">": "gt",
                ">=": "ge",
            }
            result = net.add_binary(kinds[op], left, right)
            return net.add_extend(result, max(1, context))

        if op in ("<<", ">>", "<<<", ">>>"):
            width = max(self._self_width(expr.left), context)
            left = net.add_resize(self._elaborate(expr.left, width), width)
            right = self._elaborate(expr.right, self._self_width(expr.right))
            kind = "shl" if op in ("<<", "<<<") else "shr"
            return net.add_binary(kind, left, right)

        if op in ("+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~"):
            width = max(self._self_width(expr), context)
            left = net.add_resize(self._elaborate(expr.left, width), width)
            right = net.add_resize(self._elaborate(expr.right, width), width)
            if op in ("~^", "^~"):
                return net.add_unary("not", net.add_binary("xor", left, right))
            kinds = {
                "+": "add",
                "-": "sub",
                "*": "mul",
                "/": "div",
                "%": "mod",
                "&": "and",
                "|": "or",
                "^": "xor",
            }
            return net.add_binary(kinds[op], left, right)

        raise ElaborationError(f"unsupported binary operator {op!r}")

    def _elaborate_bit_select(self, expr: BitSelect, context: int) -> int:
        net = self.netlist
        base = self._elaborate(expr.signal, self._self_width(expr.signal))
        try:
            index = self._const_eval(expr.index)
        except ElaborationError:
            index = None
        if index is not None:
            if index >= net.width_of(base):
                raise ElaborationError(
                    f"bit select index {index} exceeds width of {expr.signal}"
                )
            result = net.add_slice(base, index, 1)
        else:
            index_value = self._elaborate(expr.index, self._self_width(expr.index))
            result = net.add_dynamic_bit(base, index_value)
        return net.add_extend(result, max(1, context))


def elaborate(
    module: Module, parameters: Optional[Dict[str, int]] = None
) -> WordNetlist:
    """Elaborate a parsed module into a word-level netlist.

    ``parameters`` optionally overrides non-local module parameters (the
    equivalent of instantiating the module with ``#(.N(16))``).
    """
    return _Elaborator(module, parameters).run()
