"""Bit-blasting: word-level netlist to and-inverter graph.

Every word value becomes a vector of AIG literals (least significant bit
first).  Arithmetic operators are expanded into standard gate-level
structures (ripple-carry adders, array multiplier, restoring divider, barrel
shifters, ...) whose semantics match the reference evaluation in
:meth:`repro.hdl.netlist.WordNetlist.evaluate` bit for bit — including the
division-by-zero convention (quotient all ones, remainder equals the
dividend).

The primary input order of the produced AIG is the netlist input order with
the least significant bit first; this fixes the minterm encoding used by the
reversible flows downstream.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.aig import Aig, lit_not
from repro.hdl.netlist import WordNetlist, WordOp

__all__ = ["bitblast", "BitBlaster"]


Bits = List[int]


class BitBlaster:
    """Stateful helper translating one netlist into one AIG."""

    def __init__(self, netlist: WordNetlist, name: str = ""):
        self.netlist = netlist
        self.aig = Aig(name or netlist.name)
        self._values: Dict[int, Bits] = {}

    # -- primitive vector helpers -------------------------------------------------

    def _const_bits(self, value: int, width: int) -> Bits:
        return [Aig.CONST1 if (value >> i) & 1 else Aig.CONST0 for i in range(width)]

    def _full_adder(self, a: int, b: int, carry: int) -> Tuple[int, int]:
        """Return (sum, carry-out) literals of a full adder."""
        axb = self.aig.create_xor(a, b)
        total = self.aig.create_xor(axb, carry)
        carry_out = self.aig.create_or(
            self.aig.create_and(a, b), self.aig.create_and(axb, carry)
        )
        return total, carry_out

    def _ripple_add(self, a: Bits, b: Bits, carry_in: int = Aig.CONST0) -> Tuple[Bits, int]:
        """Ripple-carry addition of two equal-width vectors."""
        assert len(a) == len(b)
        result: Bits = []
        carry = carry_in
        for bit_a, bit_b in zip(a, b):
            total, carry = self._full_adder(bit_a, bit_b, carry)
            result.append(total)
        return result, carry

    def _subtract(self, a: Bits, b: Bits) -> Tuple[Bits, int]:
        """a - b; the returned carry is 1 iff a >= b (no borrow)."""
        inverted = [lit_not(bit) for bit in b]
        return self._ripple_add(a, inverted, Aig.CONST1)

    def _negate(self, a: Bits) -> Bits:
        inverted = [lit_not(bit) for bit in a]
        result, _ = self._ripple_add(inverted, self._const_bits(1, len(a)))
        return result

    def _multiply(self, a: Bits, b: Bits) -> Bits:
        """Array multiplier truncated to the operand width."""
        width = len(a)
        accumulator = self._const_bits(0, width)
        for i in range(width):
            partial = [
                self.aig.create_and(a[j], b[i]) if i + j < width else Aig.CONST0
                for j in range(width - i)
            ]
            shifted = self._const_bits(0, i) + partial
            accumulator, _ = self._ripple_add(accumulator, shifted[:width])
        return accumulator

    def _less_than(self, a: Bits, b: Bits) -> int:
        """Unsigned a < b."""
        _, carry = self._subtract(a, b)
        return lit_not(carry)

    def _equal(self, a: Bits, b: Bits) -> int:
        bits = [self.aig.create_xnor(x, y) for x, y in zip(a, b)]
        return self.aig.create_and_multi(bits)

    def _mux_bits(self, select: int, if_true: Bits, if_false: Bits) -> Bits:
        assert len(if_true) == len(if_false)
        return [
            self.aig.create_mux(select, t, f) for t, f in zip(if_true, if_false)
        ]

    def _divide(self, dividend: Bits, divisor: Bits) -> Tuple[Bits, Bits]:
        """Unsigned restoring division; returns (quotient, remainder)."""
        width = len(dividend)
        extended_divisor = divisor + [Aig.CONST0]
        remainder = self._const_bits(0, width + 1)
        quotient: Bits = [Aig.CONST0] * width
        for i in reversed(range(width)):
            shifted = [dividend[i]] + remainder[: width]
            difference, no_borrow = self._subtract(shifted, extended_divisor)
            remainder = self._mux_bits(no_borrow, difference, shifted)
            quotient[i] = no_borrow
        return quotient, remainder[:width]

    def _shift_left(self, value: Bits, amount: Bits) -> Bits:
        width = len(value)
        current = list(value)
        overflow_bits: List[int] = []
        for k, bit in enumerate(amount):
            step = 1 << k
            if step >= width:
                overflow_bits.append(bit)
                continue
            shifted = self._const_bits(0, step) + current[: width - step]
            current = self._mux_bits(bit, shifted, current)
        if overflow_bits:
            overflow = self.aig.create_or_multi(overflow_bits)
            current = self._mux_bits(overflow, self._const_bits(0, width), current)
        return current

    def _shift_right(self, value: Bits, amount: Bits) -> Bits:
        width = len(value)
        current = list(value)
        overflow_bits: List[int] = []
        for k, bit in enumerate(amount):
            step = 1 << k
            if step >= width:
                overflow_bits.append(bit)
                continue
            shifted = current[step:] + self._const_bits(0, step)
            current = self._mux_bits(bit, shifted, current)
        if overflow_bits:
            overflow = self.aig.create_or_multi(overflow_bits)
            current = self._mux_bits(overflow, self._const_bits(0, width), current)
        return current

    def _dynamic_bit(self, value: Bits, index: Bits) -> int:
        shifted = self._shift_right(value, index)
        return shifted[0]

    def _truth_value(self, value: Bits) -> int:
        return self.aig.create_or_multi(value)

    # -- netlist translation ---------------------------------------------------------

    def run(self) -> Aig:
        """Translate the whole netlist and return the AIG."""
        for name, width, value_index in self.netlist.inputs():
            bits = [self.aig.add_pi(f"{name}[{i}]") for i in range(width)]
            self._values[value_index] = bits

        for index, op in enumerate(self.netlist.operations()):
            if op.kind == "input":
                continue  # already handled above
            self._values[index] = self._translate(op)

        for name, width, value_index in self.netlist.outputs():
            bits = self._values[value_index][:width]
            for i, bit in enumerate(bits):
                self.aig.add_po(bit, f"{name}[{i}]")
        return self.aig

    def _operand(self, op: WordOp, position: int) -> Bits:
        return self._values[op.operands[position]]

    def _translate(self, op: WordOp) -> Bits:
        kind = op.kind
        if kind == "const":
            return self._const_bits(op.attr("value"), op.width)
        if kind == "not":
            return [lit_not(bit) for bit in self._operand(op, 0)]
        if kind == "neg":
            return self._negate(self._operand(op, 0))
        if kind in ("and", "or", "xor"):
            a, b = self._operand(op, 0), self._operand(op, 1)
            create = {
                "and": self.aig.create_and,
                "or": self.aig.create_or,
                "xor": self.aig.create_xor,
            }[kind]
            return [create(x, y) for x, y in zip(a, b)]
        if kind == "add":
            result, _ = self._ripple_add(self._operand(op, 0), self._operand(op, 1))
            return result
        if kind == "sub":
            result, _ = self._subtract(self._operand(op, 0), self._operand(op, 1))
            return result
        if kind == "mul":
            return self._multiply(self._operand(op, 0), self._operand(op, 1))
        if kind == "div":
            quotient, _ = self._divide(self._operand(op, 0), self._operand(op, 1))
            return quotient
        if kind == "mod":
            _, remainder = self._divide(self._operand(op, 0), self._operand(op, 1))
            return remainder
        if kind == "shl":
            return self._shift_left(self._operand(op, 0), self._operand(op, 1))
        if kind == "shr":
            return self._shift_right(self._operand(op, 0), self._operand(op, 1))
        if kind in ("eq", "ne"):
            equal = self._equal(self._operand(op, 0), self._operand(op, 1))
            return [equal if kind == "eq" else lit_not(equal)]
        if kind in ("lt", "le", "gt", "ge"):
            a, b = self._operand(op, 0), self._operand(op, 1)
            if kind == "lt":
                return [self._less_than(a, b)]
            if kind == "ge":
                return [lit_not(self._less_than(a, b))]
            if kind == "gt":
                return [self._less_than(b, a)]
            return [lit_not(self._less_than(b, a))]
        if kind == "mux":
            condition = self._truth_value(self._operand(op, 0))
            return self._mux_bits(condition, self._operand(op, 1), self._operand(op, 2))
        if kind == "slice":
            lsb = op.attr("lsb")
            return self._operand(op, 0)[lsb : lsb + op.width]
        if kind == "dynbit":
            return [self._dynamic_bit(self._operand(op, 0), self._operand(op, 1))]
        if kind == "concat":
            bits: Bits = []
            for part in reversed(op.operands):  # last operand is least significant
                bits.extend(self._values[part])
            return bits
        if kind == "zext":
            source = self._operand(op, 0)
            return source + self._const_bits(0, op.width - len(source))
        if kind == "reduce_and":
            return [self.aig.create_and_multi(self._operand(op, 0))]
        if kind == "reduce_or":
            return [self.aig.create_or_multi(self._operand(op, 0))]
        if kind == "reduce_xor":
            return [self.aig.create_xor_multi(self._operand(op, 0))]
        if kind == "logic_not":
            return [lit_not(self._truth_value(self._operand(op, 0)))]
        if kind in ("logic_and", "logic_or"):
            a = self._truth_value(self._operand(op, 0))
            b = self._truth_value(self._operand(op, 1))
            create = self.aig.create_and if kind == "logic_and" else self.aig.create_or
            return [create(a, b)]
        raise ValueError(f"cannot bit-blast operation kind {kind!r}")


def bitblast(netlist: WordNetlist, name: str = "") -> Aig:
    """Bit-blast a word-level netlist into an AIG."""
    return BitBlaster(netlist, name).run().cleanup()
