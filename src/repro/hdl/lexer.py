"""Tokeniser for the supported Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.hdl.errors import LexerError

__all__ = ["Token", "tokenize", "KEYWORDS"]


KEYWORDS = {
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "assign",
    "parameter",
    "localparam",
    "begin",
    "end",
}

# Multi-character operators, longest first so that maximal munch works.
_OPERATORS = [
    "<<<",
    ">>>",
    "===",
    "!==",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "~^",
    "^~",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "?",
    ":",
    "=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    "#",
    ".",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str  # "keyword" | "ident" | "number" | "op" | "eof"
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenise Verilog source text into a list of tokens (EOF-terminated)."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> LexerError:
        return LexerError(message, line, column)

    while index < length:
        char = source[index]

        # Whitespace.
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue

        # Comments.
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue

        # Numbers (optionally sized/base-prefixed, e.g. 8'b1010_1 or 'd42).
        if char.isdigit() or (char == "'" and index + 1 < length):
            start = index
            start_column = column
            while index < length and (source[index].isdigit() or source[index] == "_"):
                index += 1
                column += 1
            if index < length and source[index] == "'":
                index += 1
                column += 1
                if index < length and source[index] in "sS":
                    index += 1
                    column += 1
                if index >= length or source[index] not in "bBoOdDhH":
                    raise error("invalid number base")
                index += 1
                column += 1
                while index < length and (
                    source[index].isalnum() or source[index] == "_"
                ):
                    index += 1
                    column += 1
            text = source[start:index]
            tokens.append(Token("number", text, line, start_column))
            continue

        # Identifiers and keywords.
        if char.isalpha() or char == "_" or char == "\\":
            start = index
            start_column = column
            if char == "\\":  # escaped identifier: up to whitespace
                index += 1
                column += 1
                while index < length and not source[index].isspace():
                    index += 1
                    column += 1
                text = source[start + 1 : index]
                tokens.append(Token("ident", text, line, start_column))
                continue
            while index < length and (source[index].isalnum() or source[index] in "_$"):
                index += 1
                column += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_column))
            continue

        # Operators and punctuation.
        matched: Optional[str] = None
        for op in _OPERATORS:
            if source.startswith(op, index):
                matched = op
                break
        if matched is None:
            raise error(f"unexpected character {char!r}")
        tokens.append(Token("op", matched, line, column))
        index += len(matched)
        column += len(matched)

    tokens.append(Token("eof", "", line, column))
    return tokens


def iter_tokens(source: str) -> Iterator[Token]:
    """Convenience iterator over :func:`tokenize`."""
    return iter(tokenize(source))
