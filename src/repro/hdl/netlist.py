"""Word-level netlist: the intermediate representation between the Verilog
front-end and the bit-blaster.

The elaborator lowers a parsed module into a :class:`WordNetlist`, a DAG of
word-level operations with explicit result widths.  The netlist can be

* evaluated directly on integer input values (used as the reference model in
  the test-suite and by the examples), or
* bit-blasted into an AIG (:mod:`repro.hdl.bitblast`) for the logic
  synthesis flows.

All values are unsigned bit-vectors; two's-complement arithmetic is
expressed with explicit unsigned manipulations by the designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["WordOp", "WordNetlist"]


_BINARY_KINDS = {
    "and",
    "or",
    "xor",
    "add",
    "sub",
    "mul",
    "div",
    "mod",
    "shl",
    "shr",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
}
_UNARY_KINDS = {"not", "neg", "reduce_and", "reduce_or", "reduce_xor", "logic_not"}


@dataclass(frozen=True)
class WordOp:
    """One word-level operation.

    ``operands`` are indices of earlier operations; ``attrs`` holds
    kind-specific data (constant values, slice offsets, ...).
    """

    kind: str
    width: int
    operands: Tuple[int, ...] = ()
    attrs: Tuple[Tuple[str, int], ...] = ()

    def attr(self, name: str) -> int:
        for key, value in self.attrs:
            if key == name:
                return value
        raise KeyError(f"operation {self.kind} has no attribute {name!r}")


class WordNetlist:
    """A word-level combinational netlist."""

    def __init__(self, name: str = "netlist"):
        self.name = name
        self._ops: List[WordOp] = []
        self._inputs: List[Tuple[str, int, int]] = []  # (name, width, op index)
        self._outputs: List[Tuple[str, int, int]] = []  # (name, width, op index)

    # -- construction --------------------------------------------------------

    def _add(self, op: WordOp) -> int:
        for operand in op.operands:
            if not 0 <= operand < len(self._ops):
                raise ValueError(f"operand {operand} of {op.kind} is undefined")
        if op.width <= 0:
            raise ValueError(f"operation {op.kind} must have positive width")
        self._ops.append(op)
        return len(self._ops) - 1

    def add_input(self, name: str, width: int) -> int:
        """Declare a primary input word; returns its value index."""
        index = self._add(WordOp("input", width, (), (("position", len(self._inputs)),)))
        self._inputs.append((name, width, index))
        return index

    def add_output(self, name: str, value: int) -> None:
        """Declare a primary output driven by ``value``."""
        width = self.width_of(value)
        self._outputs.append((name, width, value))

    def add_const(self, value: int, width: int) -> int:
        """A constant word."""
        return self._add(WordOp("const", width, (), (("value", value & ((1 << width) - 1)),)))

    def add_unary(self, kind: str, operand: int) -> int:
        """Bitwise NOT / arithmetic negation / reductions / logical NOT."""
        if kind not in _UNARY_KINDS:
            raise ValueError(f"unknown unary operation {kind!r}")
        width = self.width_of(operand)
        result_width = 1 if kind.startswith("reduce") or kind == "logic_not" else width
        return self._add(WordOp(kind, result_width, (operand,)))

    def add_binary(self, kind: str, left: int, right: int) -> int:
        """Binary word operation; operand widths must already agree except
        for shifts (whose right operand is self-determined)."""
        if kind not in _BINARY_KINDS:
            raise ValueError(f"unknown binary operation {kind!r}")
        wl, wr = self.width_of(left), self.width_of(right)
        if kind in ("shl", "shr"):
            width = wl
        else:
            if wl != wr:
                raise ValueError(
                    f"width mismatch for {kind}: {wl} vs {wr} "
                    "(extend the operands first)"
                )
            width = 1 if kind in ("eq", "ne", "lt", "le", "gt", "ge") else wl
        return self._add(WordOp(kind, width, (left, right)))

    def add_logic_binary(self, kind: str, left: int, right: int) -> int:
        """Logical AND/OR on the truth values of two words."""
        if kind not in ("logic_and", "logic_or"):
            raise ValueError(f"unknown logical operation {kind!r}")
        return self._add(WordOp(kind, 1, (left, right)))

    def add_mux(self, condition: int, if_true: int, if_false: int) -> int:
        """Word-level multiplexer (condition is reduced to a truth value)."""
        wt, wf = self.width_of(if_true), self.width_of(if_false)
        if wt != wf:
            raise ValueError(f"mux branch widths differ: {wt} vs {wf}")
        return self._add(WordOp("mux", wt, (condition, if_true, if_false)))

    def add_slice(self, value: int, lsb: int, width: int) -> int:
        """Extract ``width`` bits starting at ``lsb``."""
        source_width = self.width_of(value)
        if lsb < 0 or width <= 0 or lsb + width > source_width:
            raise ValueError(
                f"slice [{lsb + width - 1}:{lsb}] out of range for width {source_width}"
            )
        return self._add(WordOp("slice", width, (value,), (("lsb", lsb),)))

    def add_dynamic_bit(self, value: int, index: int) -> int:
        """Select a single bit with a non-constant index."""
        return self._add(WordOp("dynbit", 1, (value, index)))

    def add_concat(self, parts: Sequence[int]) -> int:
        """Concatenate words; ``parts[0]`` is the most significant part."""
        if not parts:
            raise ValueError("concatenation needs at least one part")
        width = sum(self.width_of(p) for p in parts)
        return self._add(WordOp("concat", width, tuple(parts)))

    def add_extend(self, value: int, width: int) -> int:
        """Zero-extend (or return unchanged) to ``width`` bits."""
        current = self.width_of(value)
        if width < current:
            raise ValueError("use add_slice to truncate")
        if width == current:
            return value
        return self._add(WordOp("zext", width, (value,)))

    def add_resize(self, value: int, width: int) -> int:
        """Zero-extend or truncate to exactly ``width`` bits."""
        current = self.width_of(value)
        if width == current:
            return value
        if width < current:
            return self.add_slice(value, 0, width)
        return self.add_extend(value, width)

    # -- queries ------------------------------------------------------------

    def width_of(self, value: int) -> int:
        """Result width of a value index."""
        if not 0 <= value < len(self._ops):
            raise ValueError(f"value index {value} is undefined")
        return self._ops[value].width

    def op(self, value: int) -> WordOp:
        """The operation producing a value index."""
        return self._ops[value]

    def operations(self) -> List[WordOp]:
        """All operations in topological order."""
        return list(self._ops)

    def num_operations(self) -> int:
        """Number of operations (including inputs and constants)."""
        return len(self._ops)

    def inputs(self) -> List[Tuple[str, int, int]]:
        """Primary inputs as ``(name, width, value index)``."""
        return list(self._inputs)

    def outputs(self) -> List[Tuple[str, int, int]]:
        """Primary outputs as ``(name, width, value index)``."""
        return list(self._outputs)

    def input_width(self, name: str) -> int:
        """Width of a named input."""
        for input_name, width, _ in self._inputs:
            if input_name == name:
                return width
        raise KeyError(f"no input named {name!r}")

    def output_width(self, name: str) -> int:
        """Width of a named output."""
        for output_name, width, _ in self._outputs:
            if output_name == name:
                return width
        raise KeyError(f"no output named {name!r}")

    # -- reference evaluation ----------------------------------------------------

    def evaluate(self, input_values: Dict[str, int]) -> Dict[str, int]:
        """Evaluate the netlist on integer inputs (the reference semantics).

        Division and modulo by zero return the all-ones pattern and the
        dividend respectively (this matches the bit-blasted restoring
        divider and is documented in DESIGN.md).
        """
        values: List[int] = [0] * len(self._ops)
        by_position = {position: (name, width) for position, (name, width, _) in enumerate(self._inputs)}

        for index, op in enumerate(self._ops):
            mask = (1 << op.width) - 1
            if op.kind == "input":
                name, width = by_position[op.attr("position")]
                if name not in input_values:
                    raise KeyError(f"missing value for input {name!r}")
                values[index] = input_values[name] & mask
            elif op.kind == "const":
                values[index] = op.attr("value") & mask
            elif op.kind == "not":
                values[index] = (~values[op.operands[0]]) & mask
            elif op.kind == "neg":
                values[index] = (-values[op.operands[0]]) & mask
            elif op.kind == "reduce_and":
                operand = op.operands[0]
                full = (1 << self.width_of(operand)) - 1
                values[index] = int(values[operand] == full)
            elif op.kind == "reduce_or":
                values[index] = int(values[op.operands[0]] != 0)
            elif op.kind == "reduce_xor":
                values[index] = bin(values[op.operands[0]]).count("1") & 1
            elif op.kind == "logic_not":
                values[index] = int(values[op.operands[0]] == 0)
            elif op.kind in ("logic_and", "logic_or"):
                left = values[op.operands[0]] != 0
                right = values[op.operands[1]] != 0
                values[index] = int(left and right) if op.kind == "logic_and" else int(left or right)
            elif op.kind in _BINARY_KINDS:
                values[index] = self._evaluate_binary(op, values) & mask
            elif op.kind == "mux":
                condition = values[op.operands[0]] != 0
                values[index] = values[op.operands[1]] if condition else values[op.operands[2]]
            elif op.kind == "slice":
                values[index] = (values[op.operands[0]] >> op.attr("lsb")) & mask
            elif op.kind == "dynbit":
                word = values[op.operands[0]]
                position = values[op.operands[1]]
                source_width = self.width_of(op.operands[0])
                values[index] = (word >> position) & 1 if position < source_width else 0
            elif op.kind == "concat":
                value = 0
                for part in op.operands:  # most significant first
                    value = (value << self.width_of(part)) | values[part]
                values[index] = value
            elif op.kind == "zext":
                values[index] = values[op.operands[0]]
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown operation kind {op.kind!r}")

        return {name: values[value] & ((1 << width) - 1) for name, width, value in self._outputs}

    def _evaluate_binary(self, op: WordOp, values: List[int]) -> int:
        left = values[op.operands[0]]
        right = values[op.operands[1]]
        width = self.width_of(op.operands[0])
        if op.kind == "and":
            return left & right
        if op.kind == "or":
            return left | right
        if op.kind == "xor":
            return left ^ right
        if op.kind == "add":
            return left + right
        if op.kind == "sub":
            return left - right
        if op.kind == "mul":
            return left * right
        if op.kind == "div":
            return left // right if right else (1 << width) - 1
        if op.kind == "mod":
            return left % right if right else left
        if op.kind == "shl":
            return left << right
        if op.kind == "shr":
            return left >> right
        if op.kind == "eq":
            return int(left == right)
        if op.kind == "ne":
            return int(left != right)
        if op.kind == "lt":
            return int(left < right)
        if op.kind == "le":
            return int(left <= right)
        if op.kind == "gt":
            return int(left > right)
        if op.kind == "ge":
            return int(left >= right)
        raise ValueError(f"unknown binary kind {op.kind!r}")  # pragma: no cover

    def __repr__(self) -> str:
        return (
            f"WordNetlist(name={self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, operations={len(self._ops)})"
        )
