"""Recursive-descent parser for the supported Verilog subset.

Supported constructs (everything the ``INTDIV``/``NEWTON`` designs and
similar combinational arithmetic blocks need):

* a single ``module ... endmodule`` per source text (the first module is
  returned if several are present),
* ANSI and non-ANSI port declarations with constant ranges,
* ``parameter``/``localparam`` declarations (in the header or the body),
* ``wire`` declarations with optional initialiser,
* ``assign`` statements,
* the full combinational expression language: arithmetic (including ``*``,
  ``/``, ``%``), shifts, comparisons, bitwise and logical operators,
  reductions, concatenation, replication, bit and part selects and the
  conditional operator.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hdl.ast import (
    BinaryOp,
    BitSelect,
    Concat,
    ContinuousAssign,
    Expression,
    Identifier,
    Module,
    NetDeclaration,
    Number,
    ParameterDeclaration,
    PartSelect,
    PortDeclaration,
    Range,
    Repeat,
    TernaryOp,
    UnaryOp,
)
from repro.hdl.errors import ParserError
from repro.hdl.lexer import Token, tokenize

__all__ = ["parse_verilog", "parse_expression"]


# Binary operators by increasing precedence level.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^", "~^", "^~"],
    ["&"],
    ["==", "!=", "===", "!=="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", "<<<", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_UNARY_OPS = {"~", "!", "-", "+", "&", "|", "^"}


def _parse_number(text: str) -> Number:
    """Parse a Verilog number literal into a :class:`Number` node."""
    text = text.replace("_", "")
    if "'" not in text:
        return Number(int(text))
    width_text, rest = text.split("'", 1)
    width = int(width_text) if width_text else None
    if rest and rest[0] in "sS":
        rest = rest[1:]
    base_char = rest[0].lower()
    digits = rest[1:]
    bases = {"b": 2, "o": 8, "d": 10, "h": 16}
    value = int(digits, bases[base_char])
    if width is not None:
        value &= (1 << width) - 1
    return Number(value, width, base_char)


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            expected = value if value is not None else kind
            raise ParserError(
                f"expected {expected!r}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # -- module structure ------------------------------------------------------

    def parse_module(self) -> Module:
        self._expect("keyword", "module")
        name = self._expect("ident").value
        module = Module(name)

        if self._accept("op", "#"):
            self._parse_parameter_port_list(module)

        if self._accept("op", "("):
            self._parse_port_list(module)

        self._expect("op", ";")

        while not self._check("keyword", "endmodule"):
            self._parse_module_item(module)
        self._expect("keyword", "endmodule")
        return module

    def _parse_parameter_port_list(self, module: Module) -> None:
        self._expect("op", "(")
        while True:
            self._accept("keyword", "parameter")
            name = self._expect("ident").value
            self._expect("op", "=")
            value = self.parse_expression()
            module.parameters.append(ParameterDeclaration(name, value, local=False))
            if not self._accept("op", ","):
                break
        self._expect("op", ")")

    def _parse_port_list(self, module: Module) -> None:
        if self._accept("op", ")"):
            return
        while True:
            if self._check("keyword", "input") or self._check("keyword", "output"):
                direction = self._advance().value
                self._accept("keyword", "wire")
                rng = self._parse_optional_range()
                name = self._expect("ident").value
                module.ports.append(PortDeclaration(direction, name, rng))
                # Additional names share the direction/range.
                while self._accept("op", ","):
                    if self._check("keyword") or self._check("op", ")"):
                        self._pos -= 1  # the comma belongs to the outer list
                        break
                    name = self._expect("ident").value
                    module.ports.append(PortDeclaration(direction, name, rng))
            else:
                # Non-ANSI style: just a name, direction declared in the body.
                name = self._expect("ident").value
                module.ports.append(PortDeclaration("", name, None))
            if not self._accept("op", ","):
                break
        self._expect("op", ")")

    def _parse_module_item(self, module: Module) -> None:
        token = self._peek()
        if token.kind == "keyword" and token.value in ("input", "output"):
            direction = self._advance().value
            self._accept("keyword", "wire")
            rng = self._parse_optional_range()
            while True:
                name = self._expect("ident").value
                updated = False
                for port in module.ports:
                    if port.name == name:
                        port.direction = direction
                        port.range = rng
                        updated = True
                if not updated:
                    module.ports.append(PortDeclaration(direction, name, rng))
                if not self._accept("op", ","):
                    break
            self._expect("op", ";")
            return

        if token.kind == "keyword" and token.value == "wire":
            self._advance()
            rng = self._parse_optional_range()
            while True:
                name = self._expect("ident").value
                value = None
                if self._accept("op", "="):
                    value = self.parse_expression()
                module.nets.append(NetDeclaration(name, rng, value))
                if not self._accept("op", ","):
                    break
            self._expect("op", ";")
            return

        if token.kind == "keyword" and token.value in ("parameter", "localparam"):
            local = self._advance().value == "localparam"
            while True:
                name = self._expect("ident").value
                self._expect("op", "=")
                value = self.parse_expression()
                module.parameters.append(ParameterDeclaration(name, value, local))
                if not self._accept("op", ","):
                    break
            self._expect("op", ";")
            return

        if token.kind == "keyword" and token.value == "assign":
            self._advance()
            while True:
                target = self._parse_assign_target()
                self._expect("op", "=")
                value = self.parse_expression()
                module.assigns.append(ContinuousAssign(target, value))
                if not self._accept("op", ","):
                    break
            self._expect("op", ";")
            return

        raise ParserError(
            f"unsupported module item starting with {token.value!r}",
            token.line,
            token.column,
        )

    def _parse_assign_target(self) -> Expression:
        if self._check("op", "{"):
            return self._parse_primary()
        name = self._expect("ident").value
        target: Expression = Identifier(name)
        if self._accept("op", "["):
            first = self.parse_expression()
            if self._accept("op", ":"):
                second = self.parse_expression()
                self._expect("op", "]")
                return PartSelect(target, first, second)
            self._expect("op", "]")
            return BitSelect(target, first)
        return target

    def _parse_optional_range(self) -> Optional[Range]:
        if not self._accept("op", "["):
            return None
        msb = self.parse_expression()
        self._expect("op", ":")
        lsb = self.parse_expression()
        self._expect("op", "]")
        return Range(msb, lsb)

    # -- expressions -------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expression:
        condition = self._parse_binary(0)
        if self._accept("op", "?"):
            if_true = self._parse_ternary()
            self._expect("op", ":")
            if_false = self._parse_ternary()
            return TernaryOp(condition, if_true, if_false)
        return condition

    def _parse_binary(self, level: int) -> Expression:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while self._peek().kind == "op" and self._peek().value in _BINARY_LEVELS[level]:
            op = self._advance().value
            right = self._parse_binary(level + 1)
            left = BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind == "op" and token.value in _UNARY_OPS:
            self._advance()
            operand = self._parse_unary()
            return UnaryOp(token.value, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expression:
        expr = self._parse_primary()
        while self._check("op", "["):
            self._advance()
            first = self.parse_expression()
            if self._accept("op", ":"):
                second = self.parse_expression()
                self._expect("op", "]")
                expr = PartSelect(expr, first, second)
            else:
                self._expect("op", "]")
                expr = BitSelect(expr, first)
        return expr

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return _parse_number(token.value)
        if token.kind == "ident":
            self._advance()
            return Identifier(token.value)
        if token.kind == "op" and token.value == "(":
            self._advance()
            expr = self.parse_expression()
            self._expect("op", ")")
            return expr
        if token.kind == "op" and token.value == "{":
            self._advance()
            first = self.parse_expression()
            # Replication: {count{expr}}.
            if self._check("op", "{"):
                self._advance()
                value = self.parse_expression()
                self._expect("op", "}")
                self._expect("op", "}")
                return Repeat(first, value)
            parts = [first]
            while self._accept("op", ","):
                parts.append(self.parse_expression())
            self._expect("op", "}")
            return Concat(tuple(parts))
        raise ParserError(
            f"unexpected token {token.value!r} in expression", token.line, token.column
        )


def parse_verilog(source: str) -> Module:
    """Parse Verilog source text and return the first module."""
    parser = _Parser(tokenize(source))
    return parser.parse_module()


def parse_expression(source: str) -> Expression:
    """Parse a stand-alone Verilog expression (useful for tests)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    token = parser._peek()
    if token.kind != "eof":
        raise ParserError(
            f"trailing input after expression: {token.value!r}", token.line, token.column
        )
    return expr
