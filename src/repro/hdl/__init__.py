"""Verilog subset front-end (the *design level* of the paper's flow).

The paper starts every flow from an irreversible Verilog description.  This
sub-package provides a self-contained front-end for the combinational
Verilog-2001 subset needed by the reciprocal designs (and by similar
arithmetic blocks):

* :mod:`repro.hdl.lexer` / :mod:`repro.hdl.parser` / :mod:`repro.hdl.ast` —
  parsing into an abstract syntax tree,
* :mod:`repro.hdl.elaborator` / :mod:`repro.hdl.netlist` — parameter
  resolution and word-level netlist construction,
* :mod:`repro.hdl.bitblast` — word-level netlist to and-inverter graph,
* :mod:`repro.hdl.designs` — generators for the ``INTDIV(n)`` and
  ``NEWTON(n)`` reciprocal designs of Section III.

The only intentionally unsupported Verilog features are sequential logic
(``always @(posedge ...)``), hierarchical instantiation and the ``signed``
keyword; the provided designs express two's-complement arithmetic with
explicit unsigned manipulations instead.
"""

from repro.hdl.bitblast import bitblast
from repro.hdl.designs import intdiv_verilog, newton_verilog
from repro.hdl.elaborator import elaborate
from repro.hdl.parser import parse_verilog
from repro.hdl.synthesize import synthesize_verilog

__all__ = [
    "bitblast",
    "elaborate",
    "intdiv_verilog",
    "newton_verilog",
    "parse_verilog",
    "synthesize_verilog",
]
