"""Reversible-circuit pass library: the peephole passes as registered passes.

The fixed-point script of :mod:`repro.reversible.optimize` becomes three
registered passes over the ``rev`` target — so reversible cascades get the
same pipeline specs, keep-best tracking (under the ``(T-count, gates)``
objective of :func:`repro.opt.targets.target_cost`) and per-pass
differential guards as the logic networks:

* ``rev_trivial`` (``rt``) — drop statically unsatisfiable gates and
  normalise duplicate control entries,
* ``rev_not_merge`` (``rn``) — absorb NOT sandwiches into control
  polarities,
* ``rev_cancel`` (``rc``) — commutation-aware cancellation of involutory
  gate pairs.

The registered default pipeline ``rev-default`` iterates the script the
same number of rounds the historical :func:`optimize_circuit` used.
"""

from __future__ import annotations

from repro.opt.passes import Pass
from repro.opt.registry import register_pass, register_pipeline
from repro.reversible.optimize import (
    cancel_adjacent_gates,
    merge_not_gates,
    remove_trivial_gates,
)

__all__ = ["DEFAULT_REV_PIPELINE", "register_rev_passes"]

#: Name of the default reversible peephole pipeline.
DEFAULT_REV_PIPELINE = "rev-default"


def register_rev_passes() -> None:
    """Register the reversible peephole passes (idempotent per process)."""
    for pass_ in (
        Pass(
            "rev_trivial",
            remove_trivial_gates,
            network_types=("rev",),
            description="drop unsatisfiable gates, dedupe control entries",
            aliases=("rt",),
        ),
        Pass(
            "rev_not_merge",
            merge_not_gates,
            network_types=("rev",),
            description="absorb NOT sandwiches into control polarities",
            aliases=("rn",),
        ),
        Pass(
            "rev_cancel",
            cancel_adjacent_gates,
            network_types=("rev",),
            description="commutation-aware cancellation of involutory pairs",
            aliases=("rc",),
        ),
    ):
        register_pass(pass_, replace=True)
    register_pipeline(
        DEFAULT_REV_PIPELINE,
        "(rt;rn;rc)*4",
        description="trivial-gate removal, NOT merging and cancellation, "
        "four rounds",
        replace=True,
    )
