"""Uniform view of every optimisation target the pass manager accepts.

The pass manager of PR 4 spoke only the :class:`~repro.logic.network.LogicNetwork`
protocol (``aig`` / ``xmg``).  The circuit-level passes extend it to the
bottom two layers of the flow — reversible Toffoli cascades (``rev``) and
explicit Clifford+T circuits (``qc``) — which share neither the literal
encoding nor the traversal surface of the logic networks.  This module is
the dispatch layer that makes one :class:`~repro.opt.pipeline.Pipeline`
serve all four:

* :func:`target_kind` — the ``network_type`` tag (``aig`` / ``xmg`` /
  ``rev`` / ``qc``) every target class carries,
* :func:`target_stats` — a uniform :class:`~repro.logic.network.NetworkStats`
  snapshot (gates + depth for the circuit targets, with the reversible
  depth computed by greedy line-conflict layering),
* :func:`target_cost` — the per-target lexicographic keep-best objective:
  logic networks keep their :func:`~repro.logic.network.network_cost`
  tuples, reversible cascades and quantum circuits minimise
  ``(T-count, gate count)`` — T gates dominate every fault-tolerant cost
  model, so a pass trading Toffolis for T-free NOT/CNOT gates must win,
* :func:`target_copy` — the pipeline's input-isolation hook (``cleanup``
  for logic networks, ``copy`` for circuits).
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.logic.network import NetworkStats, network_cost, network_stats
from repro.reversible.circuit import ReversibleCircuit

__all__ = [
    "TARGET_KINDS",
    "reversible_depth",
    "reversible_depth_reference",
    "target_copy",
    "target_cost",
    "target_kind",
    "target_stats",
]

#: Every target type a pass may declare.
TARGET_KINDS = ("aig", "xmg", "rev", "qc")


def target_kind(target: Any) -> str:
    """The target-type tag (``aig`` / ``xmg`` / ``rev`` / ``qc``)."""
    kind = getattr(target, "network_type", None)
    if not isinstance(kind, str) or kind not in TARGET_KINDS:
        raise TypeError(
            f"{type(target).__name__} is not an optimisation target "
            f"(network_type must be one of {TARGET_KINDS})"
        )
    return kind


def reversible_depth(circuit: ReversibleCircuit) -> int:
    """Greedy depth of a Toffoli cascade (gates on disjoint lines overlap).

    A gate starts as soon as every line it touches (controls and target)
    is free — the same as-soon-as-possible schedule the quantum resource
    estimator uses, at Toffoli granularity.

    The sweep walks the packed mask columns of the gate store directly (one
    bit-walk per gate instead of materialising control tuples), memoising
    the result on the store; foreign circuit objects without a gate store
    fall back to :func:`reversible_depth_reference`.
    """
    gate_store = getattr(circuit, "gate_store", None)
    if gate_store is None:
        return reversible_depth_reference(circuit)
    store = gate_store()
    cached = store.stats.get("depth")
    if cached is not None:
        return cached
    levels = [0] * circuit.num_lines()
    targets, cares, _, _ = store.columns()
    for care, target in zip(cares, targets):
        lines = [target]
        level = levels[target]
        mask = care
        while mask:
            low = mask & -mask
            line = low.bit_length() - 1
            lines.append(line)
            if levels[line] > level:
                level = levels[line]
            mask ^= low
        level += 1
        for line in lines:
            levels[line] = level
    depth = max(levels, default=0)
    store.stats["depth"] = depth
    return depth


def reversible_depth_reference(circuit: ReversibleCircuit) -> int:
    """Per-gate-object depth sweep — the oracle for :func:`reversible_depth`."""
    levels = [0] * circuit.num_lines()
    for gate in circuit.gates():
        level = max((levels[line] for line in gate.lines()), default=0) + 1
        for line in gate.lines():
            levels[line] = level
    return max(levels, default=0)


def target_stats(target: Any) -> NetworkStats:
    """Uniform before/after statistics of any optimisation target."""
    kind = target_kind(target)
    if kind == "rev":
        return NetworkStats(
            kind=kind,
            num_pis=target.num_inputs(),
            num_pos=target.num_outputs(),
            num_gates=target.num_gates(),
            depth=reversible_depth(target),
        )
    if kind == "qc":
        from repro.quantum.resources import estimate_resources

        estimate = estimate_resources(target)
        return NetworkStats(
            kind=kind,
            num_pis=target.num_qubits,
            num_pos=target.num_qubits,
            num_gates=estimate.num_gates,
            depth=estimate.depth,
        )
    return network_stats(target)


def target_cost(target: Any) -> Tuple[int, ...]:
    """Lexicographic keep-best objective of any optimisation target."""
    kind = target_kind(target)
    if kind == "rev":
        return (target.t_count(), target.num_gates())
    if kind == "qc":
        return (target.t_count(), target.num_gates())
    return network_cost(target)


def target_copy(target: Any) -> Any:
    """An isolated working copy: ``cleanup`` for networks, ``copy`` otherwise."""
    if target_kind(target) in ("aig", "xmg"):
        return target.cleanup()
    return target.copy()
