"""ABC-style optimisation pipelines: parsing, execution, keep-best, guard.

A pipeline spec is a semicolon- (or whitespace-) separated sequence of
registered pass (or named pipeline) names with optional round repetition::

    b;rw;rf              three passes, ABC short names
    dc2*3                one script pass repeated three times
    (xst;xrf)*2          a parenthesised group repeated twice
    xmg-default          a registered named pipeline, expanded inline
    none                 the empty pipeline (also "" and "off")

Groups and repetitions are expanded at parse time, so a
:class:`Pipeline` is simply a flat pass list; ``str(pipeline)`` prints the
canonical names and re-parses to the same passes (round-trip property,
relied on by the cache keys and the sweep labels).

Execution (:meth:`Pipeline.run`) threads the target through every pass,
records a :class:`~repro.opt.passes.PassReport` per application, keeps the
best intermediate result under the per-target lexicographic
:func:`~repro.opt.targets.target_cost` objective — ``(gates, depth)`` for
AIGs, ``(MAJ, gates, depth)`` for XMGs, ``(T-count, gates)`` for reversible
cascades and Clifford+T circuits — and can guard every pass with the
differential equivalence checker of :mod:`repro.verify` (modes ``off`` /
``sampled`` / ``full`` / ``auto``; quantum circuits are compared as
unitaries with :func:`~repro.verify.differential.check_quantum_equivalent`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.opt.passes import NETWORK_TYPES, Pass, PassReport
from repro.opt.registry import _pipeline_spec, get_pass
from repro.opt.targets import target_copy, target_cost, target_kind

__all__ = [
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "PipelineVerificationError",
    "as_pipeline",
    "parse_pipeline",
]

#: Spellings of the empty pipeline accepted by :func:`parse_pipeline`.
_EMPTY_SPECS = ("", "none", "off")


class PipelineError(ValueError):
    """A pipeline spec could not be parsed or applied."""


class PipelineVerificationError(RuntimeError):
    """The per-pass equivalence guard caught a functional change."""


@dataclass
class PipelineResult:
    """Outcome of one pipeline execution."""

    network: Any
    reports: List[PassReport] = field(default_factory=list)
    #: Lexicographic cost of the returned network.
    cost: Tuple[int, ...] = ()
    #: Guard mode the run used (``"off"`` when unguarded).
    guard: str = "off"

    @property
    def total_runtime(self) -> float:
        """Summed pass runtimes in seconds."""
        return sum(report.runtime_seconds for report in self.reports)


_TOKEN = re.compile(r"\s*([A-Za-z0-9_./+-]+|[();*])")


def _tokenize(spec: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(spec):
        match = _TOKEN.match(spec, position)
        if match is None:
            remainder = spec[position:].strip()
            if not remainder:
                break
            raise PipelineError(
                f"invalid pipeline spec {spec!r}: cannot parse {remainder!r}"
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[str], spec: str, depth: int):
        self.tokens = tokens
        self.spec = spec
        self.position = 0
        self.depth = depth

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise PipelineError(f"unexpected end of pipeline spec {self.spec!r}")
        self.position += 1
        return token

    def parse_sequence(self) -> List[Pass]:
        passes: List[Pass] = []
        while True:
            token = self.peek()
            if token is None or token == ")":
                return passes
            if token == ";":
                self.take()
                continue
            passes.extend(self.parse_term())

    def parse_term(self) -> List[Pass]:
        token = self.take()
        if token == "(":
            group = self.parse_sequence()
            if self.peek() != ")":
                raise PipelineError(
                    f"unbalanced parentheses in pipeline spec {self.spec!r}"
                )
            self.take()
        elif token in (";", ")", "*"):
            raise PipelineError(
                f"unexpected {token!r} in pipeline spec {self.spec!r}"
            )
        else:
            group = self.resolve_name(token)
        if self.peek() == "*":
            self.take()
            rounds_token = self.take()
            try:
                rounds = int(rounds_token)
            except ValueError:
                raise PipelineError(
                    f"invalid round count {rounds_token!r} in pipeline spec "
                    f"{self.spec!r}"
                ) from None
            if rounds < 0:
                raise PipelineError(
                    f"negative round count in pipeline spec {self.spec!r}"
                )
            group = group * rounds
        return group

    def resolve_name(self, name: str) -> List[Pass]:
        nested_spec = _pipeline_spec(name)
        if nested_spec is not None:
            if self.depth >= 8:
                raise PipelineError(
                    f"named pipeline {name!r} nests too deeply (cycle?)"
                )
            return _parse(nested_spec, depth=self.depth + 1).passes
        return [get_pass(name)]


class Pipeline:
    """A flat, executable sequence of registered passes."""

    def __init__(self, passes: Sequence[Pass] = ()):
        self.passes: List[Pass] = list(passes)

    # -- introspection ---------------------------------------------------------

    def pass_names(self) -> List[str]:
        """Canonical names of the passes, in execution order."""
        return [p.name for p in self.passes]

    def network_types(self) -> frozenset:
        """Target types every pass of the pipeline accepts."""
        if not self.passes:
            return frozenset(NETWORK_TYPES)
        types = self.passes[0].network_types
        for p in self.passes[1:]:
            types = types & p.network_types
        return types

    def applies_to(self, network: Any) -> bool:
        """True if every pass accepts this target's type."""
        return target_kind(network) in self.network_types()

    def __str__(self) -> str:
        return ";".join(self.pass_names())

    def __repr__(self) -> str:
        return f"Pipeline({str(self) or 'none'!r})"

    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self):
        return iter(self.passes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Pipeline):
            return NotImplemented
        return self.pass_names() == other.pass_names()

    def __hash__(self) -> int:
        return hash(tuple(self.pass_names()))

    # -- execution -------------------------------------------------------------

    def run(
        self,
        network: Any,
        guard: Union[str, bool, None] = "off",
        keep_best: bool = True,
        guard_samples: int = 256,
        guard_seed: int = 1,
    ) -> PipelineResult:
        """Thread a target through every pass.

        The input is never mutated.  With ``keep_best`` (default) the
        returned target is the best seen — the isolated input included —
        under the per-target lexicographic :func:`target_cost` objective;
        each pass still consumes its predecessor's output, so a
        size-neutral restructuring pass can enable later gains without
        losing the incumbent.

        ``guard`` enables the per-pass equivalence check (``"sampled"`` /
        ``"full"`` / ``"auto"``, or booleans with their historical
        meaning): each pass output is differentially compared against its
        input — bit-parallel simulation for logic networks and reversible
        cascades, statevector comparison for quantum circuits — and a
        mismatch raises :class:`PipelineVerificationError` naming the
        offending pass, turning a silently wrong optimisation into a loud,
        attributable failure.
        """
        from repro.verify.differential import (
            check_equivalent,
            check_quantum_equivalent,
            normalize_verify_mode,
        )

        mode = normalize_verify_mode(guard)
        current = target_copy(network)
        best = current
        best_cost = target_cost(current)
        reports: List[PassReport] = []
        for pass_ in self.passes:
            if not pass_.applies_to(current):
                raise PipelineError(
                    f"pass {pass_.name!r} does not apply to "
                    f"{target_kind(current)!r} networks (accepts: "
                    f"{', '.join(sorted(pass_.network_types))})"
                )
            previous = current
            current, report = pass_.run(current)
            reports.append(report)
            if mode != "off":
                checker = (
                    check_quantum_equivalent
                    if target_kind(current) == "qc"
                    else check_equivalent
                )
                check = checker(
                    previous,
                    current,
                    mode=mode,
                    num_samples=guard_samples,
                    seed=guard_seed,
                )
                if not check:
                    raise PipelineVerificationError(
                        f"pass {pass_.name!r} broke equivalence: "
                        f"{check.message}"
                    )
            cost = target_cost(current)
            if cost < best_cost:
                best, best_cost = current, cost
        result = best if keep_best else current
        return PipelineResult(
            network=result,
            reports=reports,
            cost=target_cost(result),
            guard=mode,
        )


def _parse(spec: str, depth: int = 0) -> Pipeline:
    text = spec.strip()
    if text.lower() in _EMPTY_SPECS:
        return Pipeline()
    parser = _Parser(_tokenize(text), spec, depth)
    passes = parser.parse_sequence()
    if parser.peek() is not None:
        raise PipelineError(
            f"unbalanced parentheses in pipeline spec {spec!r}"
        )
    return Pipeline(passes)


def parse_pipeline(spec: str) -> Pipeline:
    """Parse a pipeline spec into an executable :class:`Pipeline`.

    Unknown names raise :class:`~repro.opt.registry.UnknownPassError`
    with a did-you-mean suggestion; structural errors raise
    :class:`PipelineError`.  ``str(parse_pipeline(spec))`` re-parses to
    the same pass sequence.
    """
    return _parse(spec)


def as_pipeline(value: Union[str, Pipeline, None]) -> Pipeline:
    """Coerce a spec string, a :class:`Pipeline` or ``None`` to a pipeline.

    ``None`` (like ``""`` / ``"none"`` / ``"off"``) is the empty pipeline.
    """
    if value is None:
        return Pipeline()
    if isinstance(value, Pipeline):
        return value
    if isinstance(value, str):
        return parse_pipeline(value)
    raise TypeError(
        f"expected a pipeline spec string or Pipeline, got {type(value).__name__}"
    )
