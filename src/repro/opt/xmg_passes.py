"""XMG optimisation pass library: MAJ/XOR-level multiplicative-complexity
reduction.

The hierarchical and LUT flows pay one Toffoli block per MAJ node and only
CNOTs per XOR node, so every MAJ removed here is T-count removed from every
downstream circuit.  Four passes, composable into pipelines:

* :func:`xmg_strash`       — structural cleanup/strashing: rebuild through
  the hashing constructors, which re-applies constant propagation,
  duplicate/complementary operand folding and canonical complementation,
  and drops unreachable nodes,
* :func:`xmg_rewrite`      — algebraic MAJ rewriting with the majority
  Ω-rules: absorption ``M(x, y, M(x, y, z)) = M(x, y, z)`` and its
  complementary form ``M(x, y, M(x', y', z)) = M(x, y, z)`` (both exploit
  the self-duality the constructors keep canonical),
* :func:`xmg_xor_simplify` — XOR chain simplification: maximal fanout-free
  XOR trees are collapsed, duplicate operands cancelled (``a ⊕ a = 0``),
  polarities pulled to one output complement and the remainder rebuilt as
  a balanced tree,
* :func:`xmg_refactor`     — cut-based MAJ-count refactoring: the XMG is
  covered with k-feasible cuts (area-flow selection) through the
  *protocol-generic* :func:`repro.logic.cuts.lut_map`, and every cut
  function is resynthesised with
  :func:`repro.logic.xmg_mapping.synthesize_lut_into_xmg`, which prefers
  XOR chains and single-MAJ realisations; the rebuilt network replaces
  the input only when it wins under
  :func:`~repro.logic.network.network_cost`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List

from repro.logic.cuts import lut_map
from repro.logic.lits import lit_is_compl, lit_node, lit_not, lit_not_cond
from repro.logic.network import network_cost
from repro.logic.xmg import Xmg
from repro.opt.passes import Pass
from repro.opt.registry import register_pass

__all__ = [
    "register_xmg_passes",
    "xmg_refactor",
    "xmg_rewrite",
    "xmg_strash",
    "xmg_xor_simplify",
]


def _map_lit(mapping: Dict[int, int], lit: int) -> int:
    """Translate an old-XMG literal through a node mapping."""
    return lit_not_cond(mapping[lit_node(lit)], lit_is_compl(lit))


def _init_rebuild(xmg: Xmg) -> tuple:
    new = Xmg(xmg.name)
    mapping: Dict[int, int] = {0: Xmg.CONST0}
    for pi_lit, name in zip(xmg.pis(), xmg.pi_names()):
        mapping[lit_node(pi_lit)] = new.add_pi(name)
    return new, mapping


def _finish(xmg: Xmg, new: Xmg, mapping: Dict[int, int]) -> Xmg:
    for po, name in zip(xmg.pos(), xmg.po_names()):
        new.add_po(_map_lit(mapping, po), name)
    return new.cleanup()


# ---------------------------------------------------------------------------
# Structural strashing
# ---------------------------------------------------------------------------

def xmg_strash(xmg: Xmg) -> Xmg:
    """Structural cleanup: rebuild every reachable node through the
    hashing constructors.

    The constructors fold constant fanins, duplicate and complementary
    operands and keep complement marks canonical, so a rebuild cascades
    any simplification enabled by an earlier pass and drops dangling
    nodes.  :meth:`Xmg.cleanup` performs exactly this rebuild.
    """
    return xmg.cleanup()


# ---------------------------------------------------------------------------
# Ω-rule MAJ rewriting
# ---------------------------------------------------------------------------

def _effective_fanins(xmg: Xmg, lit: int) -> tuple:
    """Fanins of the MAJ node behind ``lit`` with its complement pushed in.

    MAJ is self-dual (``¬M(a, b, c) = M(¬a, ¬b, ¬c)``), so a complemented
    MAJ literal behaves like a MAJ of the complemented fanins.
    """
    fanins = xmg.fanins(lit_node(lit))
    if lit_is_compl(lit):
        return tuple(lit_not(f) for f in fanins)
    return fanins


def _create_maj_omega(new: Xmg, a: int, b: int, c: int) -> int:
    """``create_maj`` with the absorption Ω-rules applied first."""
    # Degenerate operand pairs are the constructors' business.
    if a == b or a == c or b == c:
        return new.create_maj(a, b, c)
    if a == lit_not(b) or a == lit_not(c) or b == lit_not(c):
        return new.create_maj(a, b, c)
    for inner, x, y in ((a, b, c), (b, a, c), (c, a, b)):
        if not new.is_maj(lit_node(inner)):
            continue
        effective = _effective_fanins(new, inner)
        fanin_set = set(effective)
        # Absorption: M(x, y, M(x, y, z)) = M(x, y, z).
        if x in fanin_set and y in fanin_set:
            return inner
        # Complementary absorption: M(x, y, M(x', y', z)) = M(x, y, z).
        if lit_not(x) in fanin_set and lit_not(y) in fanin_set:
            rest = [f for f in effective if f not in (lit_not(x), lit_not(y))]
            if len(rest) == 1:
                return new.create_maj(x, y, rest[0])
    return new.create_maj(a, b, c)


def xmg_rewrite(xmg: Xmg) -> Xmg:
    """Algebraic MAJ rewriting: one topological sweep of the Ω absorption
    rules over a structurally hashed rebuild."""
    xmg = xmg.cleanup()
    new, mapping = _init_rebuild(xmg)
    for node in xmg.nodes():
        if xmg.is_maj(node):
            a, b, c = (_map_lit(mapping, f) for f in xmg.fanins(node))
            mapping[node] = _create_maj_omega(new, a, b, c)
        elif xmg.is_xor(node):
            a, b = (_map_lit(mapping, f) for f in xmg.fanins(node))
            mapping[node] = new.create_xor(a, b)
    return _finish(xmg, new, mapping)


# ---------------------------------------------------------------------------
# XOR chain simplification
# ---------------------------------------------------------------------------

def xmg_xor_simplify(xmg: Xmg) -> Xmg:
    """Collapse maximal fanout-free XOR trees, cancel duplicates, rebalance.

    Every XOR node that is the single fanin of exactly one other XOR node
    is absorbed into its consumer's tree; tree roots gather their leaf
    multiset, drop pairs (``a ⊕ a = 0``), fold leaf polarities into one
    output complement (``¬a = a ⊕ 1``) and rebuild as a balanced XOR tree.
    """
    xmg = xmg.cleanup()
    fanouts = xmg.fanout_counts()
    gate_consumers = defaultdict(list)
    for node in xmg.nodes():
        for fanin in xmg.fanins(node):
            gate_consumers[lit_node(fanin)].append(node)

    def absorbed(node: int) -> bool:
        return (
            xmg.is_xor(node)
            and fanouts[node] == 1
            and len(gate_consumers[node]) == 1
            and xmg.is_xor(gate_consumers[node][0])
        )

    new, mapping = _init_rebuild(xmg)
    for node in xmg.nodes():
        if xmg.is_maj(node):
            fanins = [_map_lit(mapping, f) for f in xmg.fanins(node)]
            mapping[node] = new.create_maj(*fanins)
            continue
        if not xmg.is_xor(node) or absorbed(node):
            # Absorbed XOR nodes are expanded inside their consumer's
            # tree below and never referenced otherwise.
            continue
        parity = 0
        leaf_counts: Counter = Counter()
        stack = list(xmg.fanins(node))
        while stack:
            lit = stack.pop()
            if lit_is_compl(lit):
                parity ^= 1
                lit = lit_not(lit)
            leaf = lit_node(lit)
            if absorbed(leaf):
                stack.extend(xmg.fanins(leaf))
            else:
                leaf_counts[leaf] += 1
        operands: List[int] = [
            mapping[leaf]
            for leaf in sorted(leaf_counts)
            if leaf_counts[leaf] % 2
        ]
        # Balanced pairwise reduction keeps the rebuilt chain shallow.
        while len(operands) > 1:
            next_level = [
                new.create_xor(operands[i], operands[i + 1])
                for i in range(0, len(operands) - 1, 2)
            ]
            if len(operands) % 2:
                next_level.append(operands[-1])
            operands = next_level
        literal = operands[0] if operands else Xmg.CONST0
        mapping[node] = lit_not_cond(literal, bool(parity))
    return _finish(xmg, new, mapping)


# ---------------------------------------------------------------------------
# Cut-based MAJ-count refactoring
# ---------------------------------------------------------------------------

def xmg_refactor(xmg: Xmg, k: int = 4, max_cuts: int = 8) -> Xmg:
    """Re-cover the XMG with k-feasible cuts and resynthesise every cut.

    The area-flow cut selection covers the network with as few cuts as the
    priority lists allow; each cut function is then rebuilt with the
    XOR/MAJ-preferring LUT resynthesiser (XOR chains are free of T gates,
    majority-like functions become a single MAJ).  The candidate replaces
    the input only when it improves the lexicographic
    ``(MAJ, gates, depth)`` cost, so the pass never regresses.

    The covering runs on the already-cleaned network (``cleanup=False``
    below avoids a second rebuild) and its cut enumeration goes through the
    structural-prefix cache of :mod:`repro.logic.cuts`, so iterated
    pipelines re-cover only the part of the network the preceding passes
    actually changed.
    """
    cleaned = xmg.cleanup()
    if cleaned.num_gates() == 0:
        return cleaned
    from repro.logic.xmg_mapping import synthesize_lut_into_xmg

    mapping = lut_map(
        cleaned, k=k, max_cuts=max_cuts, selection="area", cleanup=False
    )
    covered = mapping.network
    new = Xmg(covered.name)
    node_lit: Dict[int, int] = {0: Xmg.CONST0}
    for pi_lit, name in zip(covered.pis(), covered.pi_names()):
        node_lit[lit_node(pi_lit)] = new.add_pi(name)
    for root in mapping.order:
        leaves, truth = mapping.luts[root]
        leaf_lits = [node_lit[leaf] for leaf in leaves]
        node_lit[root] = synthesize_lut_into_xmg(
            new, truth, leaf_lits, len(leaves)
        )
    for po, name in zip(covered.pos(), covered.po_names()):
        new.add_po(
            lit_not_cond(node_lit[lit_node(po)], lit_is_compl(po)), name
        )
    candidate = new.cleanup()
    if network_cost(candidate) < network_cost(cleaned):
        return candidate
    return cleaned


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

def register_xmg_passes() -> None:
    """Register the XMG optimisation passes (idempotent per process)."""
    for pass_ in (
        Pass(
            "xmg_strash",
            xmg_strash,
            network_types=("xmg",),
            description="structural cleanup/strashing through the hashing "
            "constructors",
            aliases=("xst", "xstrash"),
        ),
        Pass(
            "xmg_rewrite",
            xmg_rewrite,
            network_types=("xmg",),
            description="algebraic MAJ rewriting (Ω absorption rules)",
            aliases=("xrw",),
        ),
        Pass(
            "xmg_xor",
            xmg_xor_simplify,
            network_types=("xmg",),
            description="XOR chain simplification (cancellation, balancing)",
            aliases=("xxor",),
        ),
        Pass(
            "xmg_refactor",
            xmg_refactor,
            network_types=("xmg",),
            description="cut-based MAJ-count refactoring (area-flow cover, "
            "XOR/MAJ resynthesis)",
            aliases=("xrf",),
        ),
    ):
        register_pass(pass_, replace=True)
