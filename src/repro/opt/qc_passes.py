"""Clifford+T peephole pass library over explicit quantum circuits.

Two passes close the loop at the lowest layer of the flow, after the
Toffoli cascade has been expanded into the Clifford+T gate set:

* ``qc_cancel`` (``qcc``) — commutation-aware cancellation of involutions
  (``x`` / ``z`` / ``h`` / ``cx`` / ``cz``) and inverse pairs
  (``t``/``tdg``, ``s``/``sdg``),
* ``qc_merge`` (``qcm``) — Z-axis rotation folding: runs of diagonal phase
  gates on one qubit combine by adding their angles in units of π/4
  (``t;t -> s``, ``s;s -> z``, ``t;tdg -> (nothing)``, ...), which is the
  pass that turns adjacent T pairs into free Clifford gates.

Both passes move gates past each other only under a conservative,
sufficient commutation relation (disjoint qubits, diagonal-with-diagonal,
diagonal on a CX control, X on a CX target, CX pairs sharing a control or
a target), so they are sound on *any* circuit — not only classical
permutations — and are guarded as unitaries by the pipeline
(:func:`repro.verify.differential.check_quantum_equivalent`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.opt.passes import Pass
from repro.opt.registry import register_pass, register_pipeline
from repro.quantum.circuit import GATE_ADJOINTS, QuantumCircuit, QuantumGate

__all__ = [
    "DEFAULT_QC_PIPELINE",
    "qc_cancel",
    "qc_merge",
    "register_qc_passes",
]

#: Name of the default Clifford+T peephole pipeline.
DEFAULT_QC_PIPELINE = "qc-default"

#: Diagonal gates in the computational basis: they all commute.
_DIAGONAL = frozenset(("z", "s", "sdg", "t", "tdg", "cz"))

#: Z-axis phase rotations in units of π/4 (mod 8).
_PHASE_UNITS = {"t": 1, "s": 2, "z": 4, "sdg": 6, "tdg": 7}

#: Phase unit (mod 8) -> single replacement gate; 0 maps to no gate at all.
_UNIT_GATES = {1: "t", 2: "s", 4: "z", 6: "sdg", 7: "tdg"}


def _commute(first: QuantumGate, second: QuantumGate) -> bool:
    """Sufficient (not necessary) condition for two gates to commute."""
    shared = set(first.qubits) & set(second.qubits)
    if not shared:
        return True
    if first.name in _DIAGONAL and second.name in _DIAGONAL:
        return True
    for gate, other in ((first, second), (second, first)):
        if gate.name != "cx":
            continue
        control, target = gate.qubits
        if other.name in _DIAGONAL and set(other.qubits) == {control}:
            return True
        if other.name == "x" and other.qubits == (target,):
            return True
        if other.name == "cx":
            other_control, other_target = other.qubits
            if control == other_control and target != other_target:
                return True
            if target == other_target and control != other_control:
                return True
    return False


def _inverse_of(first: QuantumGate, second: QuantumGate) -> bool:
    """True when ``first . second`` is the identity."""
    return (
        first.qubits == second.qubits
        and GATE_ADJOINTS[first.name] == second.name
    )


def qc_cancel(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove inverse gate pairs that can be brought next to each other.

    The same backwards commuting scan as the reversible
    :func:`~repro.reversible.optimize.cancel_adjacent_gates`, with the
    quantum commutation relation and the T/S inverse pairs on top of the
    involutions.
    """
    result: List[QuantumGate] = []
    for gate in circuit.iter_gates():
        index = len(result) - 1
        cancelled = False
        while index >= 0:
            candidate = result[index]
            if _inverse_of(candidate, gate):
                del result[index]
                cancelled = True
                break
            if not _commute(candidate, gate):
                break
            index -= 1
        if not cancelled:
            result.append(gate)
    return circuit.with_gates(result)


def qc_merge(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fold runs of Z-axis phase rotations on one qubit.

    Two phase gates on the same qubit separated only by commuting gates
    add their angles (units of π/4, mod 8); the pair is replaced by the
    single equivalent gate whenever one exists (sums of 3 or 5 units would
    need two gates and are left alone), so the gate count never grows and
    ``t;t`` becomes the T-free ``s``.
    """
    result: List[QuantumGate] = []
    for gate in circuit.iter_gates():
        merged: Optional[QuantumGate] = None
        if gate.name in _PHASE_UNITS:
            index = len(result) - 1
            while index >= 0:
                candidate = result[index]
                if (
                    candidate.name in _PHASE_UNITS
                    and candidate.qubits == gate.qubits
                ):
                    units = (
                        _PHASE_UNITS[candidate.name] + _PHASE_UNITS[gate.name]
                    ) % 8
                    if units == 0:
                        del result[index]
                        merged = gate  # consumed entirely
                        break
                    if units in _UNIT_GATES:
                        result[index] = QuantumGate(
                            _UNIT_GATES[units], gate.qubits
                        )
                        merged = gate
                        break
                if not _commute(candidate, gate):
                    break
                index -= 1
        if merged is None:
            result.append(gate)
    return circuit.with_gates(result)


def register_qc_passes() -> None:
    """Register the Clifford+T peephole passes (idempotent per process)."""
    for pass_ in (
        Pass(
            "qc_cancel",
            qc_cancel,
            network_types=("qc",),
            description="cancel involutions and T/S inverse pairs",
            aliases=("qcc",),
        ),
        Pass(
            "qc_merge",
            qc_merge,
            network_types=("qc",),
            description="fold Z-axis phase rotations (t;t -> s, ...)",
            aliases=("qcm",),
        ),
    ):
        register_pass(pass_, replace=True)
    register_pipeline(
        DEFAULT_QC_PIPELINE,
        "(qc_cancel;qc_merge)*2",
        description="Clifford+T cancellation and rotation folding, two rounds",
        replace=True,
    )
