"""Global registry of optimisation passes and named pipelines.

The registry is the single namespace the pipeline parser, the flows, the
CLI (``python -m repro passes``, ``--opt``) and the exploration engine
resolve names against.  Pass aliases (the ABC-style short names such as
``b`` / ``rw`` / ``rf``) share the namespace with canonical names and
named pipeline specs; unknown names raise :class:`UnknownPassError`
carrying a did-you-mean suggestion computed over every known spelling.
"""

from __future__ import annotations

import difflib
from typing import Dict, List, Optional

from repro.opt.passes import Pass

__all__ = [
    "UnknownPassError",
    "available_passes",
    "get_pass",
    "named_pipelines",
    "register_pass",
    "register_pipeline",
    "unregister_pass",
]


class UnknownPassError(ValueError):
    """An ``--opt`` spec referenced a name the registry does not know."""

    def __init__(self, name: str, suggestion: Optional[str] = None):
        message = f"unknown pass or pipeline {name!r}"
        if suggestion is not None:
            message += f"; did you mean {suggestion!r}?"
        super().__init__(message)
        self.unknown_name = name
        self.suggestion = suggestion


#: canonical pass name -> Pass
_PASSES: Dict[str, Pass] = {}
#: alias -> canonical pass name
_ALIASES: Dict[str, str] = {}
#: pipeline name -> (spec, description)
_PIPELINES: Dict[str, tuple] = {}


def _known_names() -> List[str]:
    return sorted({*_PASSES, *_ALIASES, *_PIPELINES})


def _suggest(name: str) -> Optional[str]:
    matches = difflib.get_close_matches(name, _known_names(), n=1, cutoff=0.5)
    return matches[0] if matches else None


def register_pass(pass_: Pass, replace: bool = False) -> Pass:
    """Register a pass under its canonical name and all of its aliases.

    ``replace=False`` (the default) rejects collisions with existing
    passes, aliases or pipeline names, so a plugin cannot silently shadow
    a built-in.  Returns the pass for decorator-style chaining.
    """
    names = (pass_.name, *pass_.aliases)
    if not replace:
        for name in names:
            if name in _PASSES or name in _ALIASES or name in _PIPELINES:
                raise ValueError(
                    f"name {name!r} is already registered; pass replace=True "
                    "to override"
                )
    _PASSES[pass_.name] = pass_
    for alias in pass_.aliases:
        _ALIASES[alias] = pass_.name
    return pass_


def unregister_pass(name: str) -> None:
    """Remove a pass (by canonical name) and its aliases from the registry."""
    pass_ = _PASSES.pop(name, None)
    if pass_ is None:
        raise UnknownPassError(name, _suggest(name))
    for alias in pass_.aliases:
        _ALIASES.pop(alias, None)


def get_pass(name: str) -> Pass:
    """Resolve a canonical name or alias to its pass.

    Raises :class:`UnknownPassError` (a ``ValueError``) with a
    did-you-mean suggestion for unknown names.
    """
    if name in _PASSES:
        return _PASSES[name]
    if name in _ALIASES:
        return _PASSES[_ALIASES[name]]
    raise UnknownPassError(name, _suggest(name))


def available_passes(network_type: Optional[str] = None) -> List[Pass]:
    """Registered passes sorted by name, optionally filtered by network type."""
    passes = sorted(_PASSES.values(), key=lambda p: p.name)
    if network_type is None:
        return passes
    return [p for p in passes if network_type in p.network_types]


def register_pipeline(
    name: str, spec: str, description: str = "", replace: bool = False
) -> None:
    """Register a named pipeline: a spec string resolvable by the parser.

    Named pipelines are expanded inline wherever a pass name could appear
    in a spec, so ``"xmg-default"`` is itself a valid ``--opt`` argument.
    """
    if not replace and (
        name in _PASSES or name in _ALIASES or name in _PIPELINES
    ):
        raise ValueError(
            f"name {name!r} is already registered; pass replace=True to "
            "override"
        )
    _PIPELINES[name] = (spec, description)


def named_pipelines() -> Dict[str, tuple]:
    """``name -> (spec, description)`` of every registered pipeline."""
    return dict(_PIPELINES)


def _pipeline_spec(name: str) -> Optional[str]:
    """The spec of a named pipeline, or ``None`` (parser hook)."""
    entry = _PIPELINES.get(name)
    return entry[0] if entry is not None else None
