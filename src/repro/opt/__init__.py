"""Optimisation pass manager over the logic-network protocol.

The paper iterates ABC optimisation scripts "several rounds" before every
reversible synthesis back-end; this package turns that pattern into a
first-class subsystem:

:class:`~repro.opt.passes.Pass`
    A named, registered network transformation with a declared network
    type (``aig`` / ``xmg``), per-application before/after
    :class:`~repro.logic.network.NetworkStats` and wall-clock accounting.

:class:`~repro.opt.pipeline.Pipeline`
    An ABC-style pass sequence parsed from specs such as ``"b;rw;rf"``,
    ``"dc2*3"`` or ``"(xst;xrf)*2"``, with round repetition, keep-best
    tracking under the lexicographic :func:`~repro.logic.network.network_cost`
    objective, and an optional per-pass equivalence guard backed by
    :func:`repro.verify.check_equivalent`.

:mod:`~repro.opt.registry`
    The global pass/pipeline registry the CLI (``python -m repro passes``),
    the flows (``--opt``) and the exploration engine enumerate; unknown
    names fail with a did-you-mean suggestion.

The AIG passes (:mod:`~repro.opt.aig_passes`) wrap the historical
:mod:`repro.logic.aig_opt` scripts; the XMG library
(:mod:`~repro.opt.xmg_passes`) adds structural strashing, algebraic
Ω-rule MAJ rewriting, XOR chain simplification and cut-based MAJ-count
refactoring — the first optimisation the MAJ/XOR structure feeding the
hierarchical and LUT flows receives, and therefore a direct Toffoli- and
T-count lever.
"""

from repro.opt.aig_passes import register_aig_passes
from repro.opt.passes import Pass, PassReport
from repro.opt.pipeline import (
    Pipeline,
    PipelineError,
    PipelineResult,
    PipelineVerificationError,
    as_pipeline,
    parse_pipeline,
)
from repro.opt.registry import (
    UnknownPassError,
    available_passes,
    get_pass,
    named_pipelines,
    register_pass,
    register_pipeline,
    unregister_pass,
)
from repro.opt.xmg_passes import register_xmg_passes

__all__ = [
    "DEFAULT_XMG_PIPELINE",
    "Pass",
    "PassReport",
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "PipelineVerificationError",
    "UnknownPassError",
    "as_pipeline",
    "available_passes",
    "get_pass",
    "named_pipelines",
    "parse_pipeline",
    "register_pass",
    "register_pipeline",
    "unregister_pass",
]

#: Name of the default XMG optimisation pipeline (registered below); the
#: hierarchical flow's ``xmg_opt="default"`` resolves to it.
DEFAULT_XMG_PIPELINE = "xmg-default"

# Populate the registry with the built-in pass libraries and pipelines.
register_aig_passes()
register_xmg_passes()
register_pipeline(
    DEFAULT_XMG_PIPELINE,
    "(xmg_strash;xmg_rewrite;xmg_xor;xmg_refactor)*2",
    description="structural cleanup, Ω-rule MAJ rewriting, XOR chain "
    "simplification and cut-based MAJ refactoring, two rounds",
)
