"""Optimisation pass manager over the logic-network protocol.

The paper iterates ABC optimisation scripts "several rounds" before every
reversible synthesis back-end; this package turns that pattern into a
first-class subsystem:

:class:`~repro.opt.passes.Pass`
    A named, registered network transformation with a declared network
    type (``aig`` / ``xmg``), per-application before/after
    :class:`~repro.logic.network.NetworkStats` and wall-clock accounting.

:class:`~repro.opt.pipeline.Pipeline`
    An ABC-style pass sequence parsed from specs such as ``"b;rw;rf"``,
    ``"dc2*3"`` or ``"(xst;xrf)*2"``, with round repetition, keep-best
    tracking under the lexicographic :func:`~repro.logic.network.network_cost`
    objective, and an optional per-pass equivalence guard backed by
    :func:`repro.verify.check_equivalent`.

:mod:`~repro.opt.registry`
    The global pass/pipeline registry the CLI (``python -m repro passes``),
    the flows (``--opt``) and the exploration engine enumerate; unknown
    names fail with a did-you-mean suggestion.

Passes declare a target type — ``aig`` / ``xmg`` (the
:class:`~repro.logic.network.LogicNetwork` protocol), ``rev`` (reversible
Toffoli cascades) or ``qc`` (explicit Clifford+T circuits) — and one
pipeline engine serves all four through the dispatch layer of
:mod:`~repro.opt.targets`, so every layer of the flow below the AIG is
optimised, guarded and swept through the same interface.

The AIG passes (:mod:`~repro.opt.aig_passes`) wrap the historical
:mod:`repro.logic.aig_opt` scripts; the XMG library
(:mod:`~repro.opt.xmg_passes`) adds structural strashing, algebraic
Ω-rule MAJ rewriting, XOR chain simplification and cut-based MAJ-count
refactoring; the reversible library (:mod:`~repro.opt.rev_passes`)
registers the cascade peepholes (cancellation, NOT merging, trivial-gate
removal) under the ``(T-count, gates)`` objective; and the Clifford+T
library (:mod:`~repro.opt.qc_passes`) cancels involutions/inverse pairs
and folds phase rotations on the mapped circuits themselves.
"""

from repro.opt.aig_passes import register_aig_passes
from repro.opt.passes import Pass, PassReport
from repro.opt.pipeline import (
    Pipeline,
    PipelineError,
    PipelineResult,
    PipelineVerificationError,
    as_pipeline,
    parse_pipeline,
)
from repro.opt.qc_passes import (
    DEFAULT_QC_PIPELINE,
    qc_cancel,
    qc_merge,
    register_qc_passes,
)
from repro.opt.registry import (
    UnknownPassError,
    available_passes,
    get_pass,
    named_pipelines,
    register_pass,
    register_pipeline,
    unregister_pass,
)
from repro.opt.rev_passes import DEFAULT_REV_PIPELINE, register_rev_passes
from repro.opt.targets import (
    TARGET_KINDS,
    target_copy,
    target_cost,
    target_kind,
    target_stats,
)
from repro.opt.xmg_passes import register_xmg_passes

__all__ = [
    "DEFAULT_QC_PIPELINE",
    "DEFAULT_REV_PIPELINE",
    "DEFAULT_XMG_PIPELINE",
    "Pass",
    "PassReport",
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "PipelineVerificationError",
    "TARGET_KINDS",
    "UnknownPassError",
    "as_pipeline",
    "available_passes",
    "get_pass",
    "named_pipelines",
    "parse_pipeline",
    "qc_cancel",
    "qc_merge",
    "register_pass",
    "register_pipeline",
    "target_copy",
    "target_cost",
    "target_kind",
    "target_stats",
    "unregister_pass",
]

#: Name of the default XMG optimisation pipeline (registered below); the
#: hierarchical flow's ``xmg_opt="default"`` resolves to it.
DEFAULT_XMG_PIPELINE = "xmg-default"

# Populate the registry with the built-in pass libraries and pipelines.
register_aig_passes()
register_xmg_passes()
register_rev_passes()
register_qc_passes()
register_pipeline(
    DEFAULT_XMG_PIPELINE,
    "(xmg_strash;xmg_rewrite;xmg_xor;xmg_refactor)*2",
    description="structural cleanup, Ω-rule MAJ rewriting, XOR chain "
    "simplification and cut-based MAJ refactoring, two rounds",
)
