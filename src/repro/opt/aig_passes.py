"""AIG pass library: the :mod:`repro.logic.aig_opt` scripts as registered passes.

These are the ABC analogues the paper's flows iterate (``dc2`` for the
BDD/ESOP flows, ``resyn2`` for the XMG flow), exposed under their
canonical names and the ABC short aliases (``b`` / ``rw`` / ``rf``) so
pipeline specs read like ABC scripts: ``"b;rw;rf"``, ``"dc2*3"``.
"""

from __future__ import annotations

from repro.logic import aig_opt
from repro.opt.passes import Pass
from repro.opt.registry import register_pass

__all__ = ["register_aig_passes"]


def register_aig_passes() -> None:
    """Register the AIG optimisation passes (idempotent per process)."""
    for pass_ in (
        Pass(
            "balance",
            aig_opt.balance,
            network_types=("aig",),
            description="depth-oriented rebalancing of AND trees",
            aliases=("b",),
        ),
        Pass(
            "rewrite",
            aig_opt.rewrite,
            network_types=("aig",),
            description="cut-rewriting analogue: refactoring of small cones",
            aliases=("rw",),
        ),
        Pass(
            "refactor",
            aig_opt.refactor,
            network_types=("aig",),
            description="collapse fanout-free cones and rebuild factored SOPs",
            aliases=("rf",),
        ),
        Pass(
            "dc2",
            aig_opt.dc2,
            network_types=("aig",),
            description="ABC dc2 analogue (balance/rewrite/refactor script)",
        ),
        Pass(
            "resyn2",
            aig_opt.resyn2,
            network_types=("aig",),
            description="ABC resyn2 analogue (extended rewrite/refactor script)",
        ),
    ):
        register_pass(pass_, replace=True)
