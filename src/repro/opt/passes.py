"""The :class:`Pass` object model of the pass manager.

A pass is a *purely functional* transformation of an optimisation target:
it receives a target — a :class:`~repro.logic.network.LogicNetwork`
(``aig`` / ``xmg``), a reversible Toffoli cascade (``rev``) or an explicit
Clifford+T circuit (``qc``) — returns a new target of the same type and
never mutates its input.  The class wraps the bare function with the
metadata the registry, the pipelines and the CLI need — name, aliases,
applicable target types, a one-line description — and with uniform
before/after accounting (:class:`PassReport`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Tuple

from repro.logic.network import NetworkStats
from repro.opt.targets import TARGET_KINDS, target_kind, target_stats

__all__ = ["Pass", "PassReport"]

#: Target types a pass may declare (``aig`` / ``xmg`` / ``rev`` / ``qc``).
NETWORK_TYPES = TARGET_KINDS


@dataclass(frozen=True)
class PassReport:
    """Before/after accounting of one pass application."""

    pass_name: str
    before: NetworkStats
    after: NetworkStats
    runtime_seconds: float

    @property
    def gate_delta(self) -> int:
        """Gate-count change (negative is an improvement)."""
        return self.after.num_gates - self.before.num_gates

    @property
    def depth_delta(self) -> int:
        """Depth change (negative is an improvement)."""
        return self.after.depth - self.before.depth

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.pass_name}: gates {self.before.num_gates} -> "
            f"{self.after.num_gates}, depth {self.before.depth} -> "
            f"{self.after.depth} ({self.runtime_seconds:.3f} s)"
        )


class Pass:
    """A named, registrable optimisation pass.

    ``func`` is the underlying transformation (``target -> target``);
    ``network_types`` the target kinds it accepts (any subset of ``aig`` /
    ``xmg`` / ``rev`` / ``qc``); ``aliases`` the short ABC-style names the
    pipeline parser also resolves (e.g. ``"b"`` for ``balance`` or ``"rc"``
    for ``rev_cancel``).
    """

    def __init__(
        self,
        name: str,
        func: Callable[[Any], Any],
        network_types: Iterable[str] = ("aig",),
        description: str = "",
        aliases: Iterable[str] = (),
    ) -> None:
        if not name:
            raise ValueError("a pass needs a non-empty name")
        self.name = name
        self._func = func
        self.network_types = frozenset(network_types)
        unknown = self.network_types.difference(NETWORK_TYPES)
        if not self.network_types or unknown:
            raise ValueError(
                f"pass {name!r} declares invalid network types "
                f"{sorted(unknown) or '(none)'}; expected a subset of "
                f"{NETWORK_TYPES}"
            )
        self.description = description
        self.aliases = tuple(aliases)

    def applies_to(self, network: Any) -> bool:
        """True if the pass accepts this target's type."""
        return target_kind(network) in self.network_types

    def apply(self, network: Any) -> Any:
        """Run the bare transformation (type-checked, no accounting)."""
        kind = target_kind(network)
        if kind not in self.network_types:
            raise TypeError(
                f"pass {self.name!r} does not apply to {kind!r} networks "
                f"(accepts: {', '.join(sorted(self.network_types))})"
            )
        return self._func(network)

    def run(self, network: Any) -> Tuple[Any, PassReport]:
        """Run the pass and return ``(result, before/after report)``."""
        before = target_stats(network)
        start = time.perf_counter()
        result = self.apply(network)
        runtime = time.perf_counter() - start
        report = PassReport(
            pass_name=self.name,
            before=before,
            after=target_stats(result),
            runtime_seconds=runtime,
        )
        return result, report

    def __call__(self, network: Any) -> Any:
        return self.apply(network)

    def __repr__(self) -> str:
        return (
            f"Pass(name={self.name!r}, "
            f"networks={'/'.join(sorted(self.network_types))})"
        )
