"""OpenQASM 2.0 writer and reader for Clifford+T circuits.

The quantum level of the flow can be exported to OpenQASM 2.0, the common
interchange format of Qiskit and friends, so that the circuits produced by
this reproduction can be simulated or transpiled elsewhere.  The reader
(:func:`parse_qasm`) accepts exactly the subset the writer emits — the full
Clifford+T gate vocabulary of :data:`repro.quantum.circuit.SUPPORTED_GATES`
over a single quantum register — so export/parse round-trips losslessly
(property-tested over the whole vocabulary, including every gate the
relative-phase-Toffoli mapping emits).
"""

from __future__ import annotations

import re
from typing import Dict

from repro.quantum.circuit import SUPPORTED_GATES, QuantumCircuit

__all__ = ["parse_qasm", "write_qasm"]


_QASM_NAMES: Dict[str, str] = {name: name for name in SUPPORTED_GATES}


def write_qasm(circuit: QuantumCircuit, register: str = "q") -> str:
    """Serialise a Clifford+T circuit into OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg {register}[{circuit.num_qubits}];",
    ]
    for gate in circuit.iter_gates():
        name = _QASM_NAMES.get(gate.name)
        if name is None:  # pragma: no cover - all supported gates are mapped
            raise ValueError(f"gate {gate.name!r} has no QASM equivalent")
        operands = ", ".join(f"{register}[{qubit}]" for qubit in gate.qubits)
        lines.append(f"{name} {operands};")
    return "\n".join(lines) + "\n"


_QREG = re.compile(r"qreg\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(?P<size>\d+)\s*\]$")
_OPERAND = re.compile(r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(?P<index>\d+)\s*\]$")


def parse_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 text produced by :func:`write_qasm`.

    Inverse of the writer over the supported gate vocabulary: one quantum
    register, no classical registers, no gate definitions.  Raises
    :class:`ValueError` on anything outside that subset (unknown gates,
    multiple registers, out-of-range qubit operands), with the offending
    line in the message.
    """
    register = None
    num_qubits = 0
    circuit = None
    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        if not line.endswith(";"):
            raise ValueError(f"missing ';' in QASM line {raw_line!r}")
        statement = line[:-1].strip()
        if statement.startswith("OPENQASM") or statement.startswith("include"):
            continue
        if statement.startswith("qreg"):
            match = _QREG.match(statement)
            if match is None:
                raise ValueError(f"cannot parse register declaration {raw_line!r}")
            if register is not None:
                raise ValueError("multiple quantum registers are not supported")
            register = match.group("name")
            num_qubits = int(match.group("size"))
            circuit = QuantumCircuit(num_qubits, name=register)
            continue
        if circuit is None:
            raise ValueError(f"gate before any qreg declaration: {raw_line!r}")
        name, _, operand_text = statement.partition(" ")
        if name not in SUPPORTED_GATES:
            raise ValueError(f"unsupported gate {name!r} in {raw_line!r}")
        qubits = []
        for operand in operand_text.split(","):
            match = _OPERAND.match(operand.strip())
            if match is None or match.group("name") != register:
                raise ValueError(f"cannot parse operand in {raw_line!r}")
            index = int(match.group("index"))
            if index >= num_qubits:
                raise ValueError(
                    f"qubit {index} out of range for {register}[{num_qubits}] "
                    f"in {raw_line!r}"
                )
            qubits.append(index)
        circuit.add(name, *qubits)
    if circuit is None:
        raise ValueError("QASM text declares no quantum register")
    return circuit
