"""OpenQASM 2.0 writer for Clifford+T circuits.

The quantum level of the flow can be exported to OpenQASM 2.0, the common
interchange format of Qiskit and friends, so that the circuits produced by
this reproduction can be simulated or transpiled elsewhere.  Only a writer
is provided (reading arbitrary QASM is outside the scope of the paper).
"""

from __future__ import annotations

from typing import Dict

from repro.quantum.circuit import QuantumCircuit

__all__ = ["write_qasm"]


_QASM_NAMES: Dict[str, str] = {
    "x": "x",
    "z": "z",
    "h": "h",
    "s": "s",
    "sdg": "sdg",
    "t": "t",
    "tdg": "tdg",
    "cx": "cx",
    "cz": "cz",
}


def write_qasm(circuit: QuantumCircuit, register: str = "q") -> str:
    """Serialise a Clifford+T circuit into OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg {register}[{circuit.num_qubits}];",
    ]
    for gate in circuit.gates():
        name = _QASM_NAMES.get(gate.name)
        if name is None:  # pragma: no cover - all supported gates are mapped
            raise ValueError(f"gate {gate.name!r} has no QASM equivalent")
        operands = ", ".join(f"{register}[{qubit}]" for qubit in gate.qubits)
        lines.append(f"{name} {operands};")
    return "\n".join(lines) + "\n"
