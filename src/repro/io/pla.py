"""Berkeley PLA reader and writer for two-level covers.

The ESOP flow of the paper exchanges two-level covers between ABC and REVS
as PLA files.  The writer emits the usual espresso dialect:

* ``.i`` / ``.o`` — input and output counts,
* ``.ilb`` / ``.ob`` — optional signal names,
* ``.type fr`` — marks an exclusive (ESOP) cover, ``.type f`` an inclusive
  (SOP) one,
* one line per product term: input part over ``{0,1,-}``, output part over
  ``{0,1}``.

The reader accepts the same subset.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.logic.cube import Cube
from repro.logic.esop import EsopCover, EsopTerm

__all__ = ["write_pla", "read_pla"]


def write_pla(
    cover: EsopCover,
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
    exclusive: bool = True,
) -> str:
    """Serialise a cover into PLA text (``.type fr`` for ESOP semantics)."""
    lines = [f".i {cover.num_inputs}", f".o {cover.num_outputs}"]
    if input_names is not None:
        if len(input_names) != cover.num_inputs:
            raise ValueError("input_names length mismatch")
        lines.append(".ilb " + " ".join(input_names))
    if output_names is not None:
        if len(output_names) != cover.num_outputs:
            raise ValueError("output_names length mismatch")
        lines.append(".ob " + " ".join(output_names))
    lines.append(f".type {'fr' if exclusive else 'f'}")
    lines.append(f".p {cover.num_terms()}")
    for term in cover.terms:
        output_part = "".join(
            "1" if (term.outputs >> j) & 1 else "0" for j in range(cover.num_outputs)
        )
        lines.append(f"{term.cube.to_string()} {output_part}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def read_pla(text: str) -> EsopCover:
    """Parse PLA text into an :class:`~repro.logic.esop.EsopCover`.

    The cover is returned with ESOP semantics; files declaring ``.type f``
    are accepted only when their product terms are pairwise disjoint (then
    OR and XOR semantics coincide).
    """
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    exclusive = True
    terms: List[EsopTerm] = []

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            fields = line.split()
            directive = fields[0]
            if directive == ".i":
                num_inputs = int(fields[1])
            elif directive == ".o":
                num_outputs = int(fields[1])
            elif directive == ".type":
                exclusive = fields[1] in ("fr", "esop")
            elif directive in (".p", ".ilb", ".ob", ".e"):
                continue
            else:
                raise ValueError(f"unsupported PLA directive {directive!r}")
            continue

        if num_inputs is None or num_outputs is None:
            raise ValueError("product term before .i/.o declaration")
        fields = line.split()
        if len(fields) != 2:
            raise ValueError(f"malformed PLA term {line!r}")
        input_part, output_part = fields
        if len(input_part) != num_inputs or len(output_part) != num_outputs:
            raise ValueError(f"term {line!r} does not match declared sizes")
        cube = Cube.from_string(input_part)
        outputs = 0
        for j, char in enumerate(output_part):
            if char == "1":
                outputs |= 1 << j
            elif char not in "0~":
                raise ValueError(f"invalid output character {char!r}")
        if outputs:
            terms.append(EsopTerm(cube, outputs))

    if num_inputs is None or num_outputs is None:
        raise ValueError("PLA file misses .i/.o declarations")

    cover = EsopCover(num_inputs, num_outputs, terms)
    if not exclusive:
        _check_disjoint(cover)
    return cover


def _check_disjoint(cover: EsopCover) -> None:
    for i, first in enumerate(cover.terms):
        for second in cover.terms[i + 1 :]:
            if first.outputs & second.outputs and first.cube.intersects(second.cube):
                raise ValueError(
                    "SOP cover with overlapping terms cannot be interpreted as ESOP"
                )
