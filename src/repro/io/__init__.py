"""Interchange formats: AIGER, PLA, RevLib REAL and OpenQASM.

The paper's flows exchange data between ABC, CirKit, RevKit and REVS through
files; this sub-package provides the corresponding readers/writers so that
circuits produced by this library can be inspected with (or imported from)
the standard academic tools:

* :mod:`repro.io.aiger`   — combinational ASCII AIGER (``.aag``) for AIGs,
* :mod:`repro.io.pla`     — Berkeley PLA files for SOP/ESOP covers
  (``.type fr`` marks an ESOP, as accepted by ABC and exorcism),
* :mod:`repro.io.realfmt` — RevLib ``.real`` files for reversible circuits,
* :mod:`repro.io.qasm`    — OpenQASM 2.0 for the Clifford+T level.
"""

from repro.io.aiger import read_aiger, write_aiger
from repro.io.pla import read_pla, write_pla
from repro.io.qasm import write_qasm
from repro.io.realfmt import read_real, write_real

__all__ = [
    "read_aiger",
    "read_pla",
    "read_real",
    "write_aiger",
    "write_pla",
    "write_qasm",
    "write_real",
]
