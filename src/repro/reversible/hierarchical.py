"""Hierarchical reversible synthesis from XOR-majority graphs (Section IV-C).

Every XMG node is compiled into a small gate block that computes its value
onto an ancilla line:

* an XOR node costs two CNOT gates (and possibly a NOT) — no T gates,
* a MAJ node costs exactly one Toffoli gate (plus CNOT/NOT bookkeeping),
  using the identity ``maj(a, b, c) = c xor ((a xor c) and (b xor c))``;
  the AND/OR special cases (a constant fanin) likewise cost one Toffoli.

Because intermediate values live on their own lines, the number of qubits is
large — this is the scalable, low-T-count corner of the design space
reported in Table IV.  Two ancilla management strategies are provided
(mirroring the cleanup strategies of REVS [9]):

* ``"bennett"``    — compute every node once, copy the outputs, then
  uncompute every node in reverse order.  All ancillas return to zero; the
  number of ancillas equals the number of XMG nodes.
* ``"per_output"`` — compute, copy and immediately uncompute one primary
  output cone at a time, reusing the freed ancilla lines for the next
  output.  This trades additional gates (logic shared between outputs is
  recomputed) for a smaller number of qubits.  ``"eager"`` is accepted as an
  alias.  Copy targets are drawn from the same pool as the cone ancillas:
  an output claimed after an earlier cone has been uncomputed reuses one of
  its zeroed lines, so a trivial output (a bare primary input or constant
  literal) never allocates a fresh qubit once freed lines exist.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.logic.xmg import Xmg, lit_is_compl, lit_node
from repro.reversible.circuit import LinePool, ReversibleCircuit
from repro.reversible.gates import ToffoliGate

__all__ = ["hierarchical_synthesis"]


class _Compiler:
    def __init__(self, xmg: Xmg, strategy: str, name: str):
        if strategy == "eager":
            strategy = "per_output"
        if strategy not in ("bennett", "per_output"):
            raise ValueError(f"unknown cleanup strategy {strategy!r}")
        self.xmg = xmg
        self.strategy = strategy
        self.circuit = ReversibleCircuit(name)
        self.pool = LinePool(self.circuit, reuse=(strategy == "per_output"))
        self.node_line: Dict[int, int] = {}
        self.node_block: Dict[int, List[ToffoliGate]] = {}

    # -- fanin helpers ---------------------------------------------------------

    def _fanin_line(self, lit: int) -> Tuple[Optional[int], bool, Optional[int]]:
        """Resolve a fanin literal to ``(line, complemented, constant)``."""
        node = lit_node(lit)
        compl = lit_is_compl(lit)
        if self.xmg.is_const(node):
            return None, False, 1 if compl else 0
        return self.node_line[node], compl, None

    # -- node blocks -----------------------------------------------------------

    def _xor_block(self, node: int, target: int) -> List[ToffoliGate]:
        gates: List[ToffoliGate] = []
        parity = False
        for lit in self.xmg.fanins(node):
            line, compl, constant = self._fanin_line(lit)
            if constant is not None:
                parity ^= bool(constant)
                continue
            gates.append(ToffoliGate.cnot(line, target))
            parity ^= compl
        if parity:
            gates.append(ToffoliGate.x(target))
        return gates

    def _maj_block(self, node: int, target: int) -> List[ToffoliGate]:
        fanins = [self._fanin_line(lit) for lit in self.xmg.fanins(node)]
        constants = [f for f in fanins if f[2] is not None]
        variables = [f for f in fanins if f[2] is None]

        if len(constants) >= 2:
            raise AssertionError("majority nodes with two constant fanins must fold")

        gates: List[ToffoliGate] = []
        if len(constants) == 1:
            (line_a, compl_a, _), (line_b, compl_b, _) = variables
            if constants[0][2] == 0:
                # AND of the two variable fanins.
                gates.append(
                    ToffoliGate(((line_a, not compl_a), (line_b, not compl_b)), target)
                )
            else:
                # OR via De Morgan: one Toffoli with negated controls, then NOT.
                gates.append(
                    ToffoliGate(((line_a, compl_a), (line_b, compl_b)), target)
                )
                gates.append(ToffoliGate.x(target))
            return gates

        # General case: maj(u, v, w) = w xor ((u xor w) and (v xor w)).
        (line_a, compl_a, _), (line_b, compl_b, _), (line_c, compl_c, _) = fanins
        gates.append(ToffoliGate.cnot(line_c, line_a))
        gates.append(ToffoliGate.cnot(line_c, line_b))
        gates.append(
            ToffoliGate(
                ((line_a, not (compl_a ^ compl_c)), (line_b, not (compl_b ^ compl_c))),
                target,
            )
        )
        gates.append(ToffoliGate.cnot(line_c, target))
        if compl_c:
            gates.append(ToffoliGate.x(target))
        gates.append(ToffoliGate.cnot(line_c, line_a))
        gates.append(ToffoliGate.cnot(line_c, line_b))
        return gates

    def _compute_node(self, node: int) -> None:
        target = self.pool.acquire()
        # ``node_line`` must be set before building the block only for
        # *other* nodes; the block of this node reads its fanins only.
        if self.xmg.is_xor(node):
            block = self._xor_block(node, target)
        else:
            block = self._maj_block(node, target)
        for gate in block:
            self.circuit.append(gate)
        self.node_line[node] = target
        self.node_block[node] = block

    def _uncompute_node(self, node: int) -> None:
        """Re-apply the node's block (an involution) and release its line."""
        for gate in self.node_block[node]:
            self.circuit.append(gate)
        self.pool.release(self.node_line[node])
        del self.node_line[node]
        del self.node_block[node]

    def _copy_output(self, output_index: int, po_lit: int, target: int) -> None:
        node = lit_node(po_lit)
        if self.xmg.is_const(node):
            if lit_is_compl(po_lit):
                self.circuit.append(ToffoliGate.x(target))
            return
        self.circuit.append(ToffoliGate.cnot(self.node_line[node], target))
        if lit_is_compl(po_lit):
            self.circuit.append(ToffoliGate.x(target))

    # -- strategies ---------------------------------------------------------------

    def _cone_nodes(self, root: int) -> List[int]:
        """Gate nodes in the transitive fanin of ``root`` (topological order)."""
        seen = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen or self.xmg.is_pi(node) or self.xmg.is_const(node):
                continue
            seen.add(node)
            for lit in self.xmg.fanins(node):
                stack.append(lit_node(lit))
        return sorted(seen)

    def _claim_output_line(self, output_index: int) -> int:
        """Claim a line for a primary output from the ancilla pool.

        A freed (zeroed) ancilla of an earlier cone is reused when one is
        available; the line is renamed and never returned to the pool.
        """
        line = self.pool.acquire(name=self.xmg.po_names()[output_index])
        self.circuit.set_output(line, output_index)
        return line

    def run(self) -> ReversibleCircuit:
        xmg = self.xmg
        for i, name in enumerate(xmg.pi_names()):
            line = self.circuit.add_input_line(i, name=name)
            self.node_line[lit_node(xmg.pis()[i])] = line

        if self.strategy == "bennett":
            # No line is ever freed before the copies, so the output lines
            # can be allocated upfront (stable line order for reports).
            output_lines = [
                self._claim_output_line(j) for j in range(len(xmg.pos()))
            ]
            order = xmg.gate_nodes()
            for node in order:
                self._compute_node(node)
            for j, po in enumerate(xmg.pos()):
                self._copy_output(j, po, output_lines[j])
            for node in reversed(order):
                self._uncompute_node(node)
        else:  # per_output
            for j, po in enumerate(xmg.pos()):
                cone = self._cone_nodes(lit_node(po))
                for node in cone:
                    self._compute_node(node)
                # Claim the copy target only now: after the previous cone
                # was uncomputed the pool holds zeroed lines, so trivial
                # outputs (bare primary inputs / constant literals) and
                # small cones reuse them instead of fresh ancillas.
                target = self._claim_output_line(j)
                self._copy_output(j, po, target)
                for node in reversed(cone):
                    self._uncompute_node(node)

        return self.circuit


def hierarchical_synthesis(
    xmg: Xmg, strategy: str = "bennett", name: str = "hierarchical"
) -> ReversibleCircuit:
    """Compile an XMG into a reversible circuit node by node.

    ``strategy`` selects the ancilla cleanup policy (``"bennett"``,
    ``"per_output"`` or its alias ``"eager"``, see the module docstring).
    All strategies produce a clean circuit: every ancilla returns to zero and
    the primary inputs are preserved.
    """
    return _Compiler(xmg.cleanup(), strategy, name).run()
