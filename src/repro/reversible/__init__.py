"""Reversible circuits and reversible logic synthesis.

This sub-package implements the *reversible synthesis level* of the paper's
design flows:

* :mod:`repro.reversible.gates` / :mod:`repro.reversible.circuit` — mixed
  polarity multiple-controlled Toffoli gates and gate cascades,
* :mod:`repro.reversible.embedding` — Bennett and optimum-line embeddings of
  irreversible functions (Section II-B),
* :mod:`repro.reversible.tbs` / :mod:`repro.reversible.symbolic_tbs` —
  transformation-based synthesis (the functional flow),
* :mod:`repro.reversible.esop_synth` — ESOP-based synthesis with optional
  sub-expression factoring (the REVS flow, parameter ``p``),
* :mod:`repro.reversible.hierarchical` — hierarchical synthesis from XMGs
  with Bennett or eager ancilla cleanup,
* :mod:`repro.reversible.pebbling` / :mod:`repro.reversible.lut_synth` —
  LUT-granular hierarchical synthesis: reversible pebbling schedules over
  a k-LUT cover (Bennett / eager / budget-bounded strategies, with a
  machine-checked schedule validator) and their execution via per-LUT
  ESOP/TBS blocks (the ``lut`` flow),
* :mod:`repro.reversible.verification` — equivalence of a synthesised
  circuit against the original irreversible specification.
"""

from repro.reversible.circuit import LineInfo, LinePool, ReversibleCircuit
from repro.reversible.embedding import (
    EmbeddedFunction,
    bennett_embedding,
    minimum_additional_lines,
    optimum_embedding,
)
from repro.reversible.esop_synth import esop_synthesis
from repro.reversible.gates import ToffoliGate
from repro.reversible.hierarchical import hierarchical_synthesis
from repro.reversible.lut_synth import lut_synthesis, synthesize_schedule
from repro.reversible.pebbling import (
    InvalidScheduleError,
    PebbleSchedule,
    PebbleStep,
    bennett_schedule,
    bounded_schedule,
    eager_schedule,
    make_schedule,
    minimum_pebbles,
    validate_schedule,
)
from repro.reversible.tbs import transformation_based_synthesis
from repro.reversible.symbolic_tbs import symbolic_tbs
from repro.reversible.verification import verify_circuit

__all__ = [
    "EmbeddedFunction",
    "InvalidScheduleError",
    "LineInfo",
    "LinePool",
    "PebbleSchedule",
    "PebbleStep",
    "ReversibleCircuit",
    "ToffoliGate",
    "bennett_embedding",
    "bennett_schedule",
    "bounded_schedule",
    "eager_schedule",
    "esop_synthesis",
    "hierarchical_synthesis",
    "lut_synthesis",
    "make_schedule",
    "minimum_additional_lines",
    "minimum_pebbles",
    "optimum_embedding",
    "symbolic_tbs",
    "synthesize_schedule",
    "transformation_based_synthesis",
    "validate_schedule",
    "verify_circuit",
]
