"""Transformation-based synthesis (Miller–Maslov–Dueck) of reversible functions.

The functional synthesis flow of the paper uses the symbolic variant [7] of
the classical transformation-based algorithm [5]: Toffoli gates are chosen
that transform the function into the identity; the collected gates, suitably
reordered, realise the function.  The algorithm never adds lines, so
combined with an optimum embedding it yields line-optimal circuits — at the
price of very large multiple-controlled Toffoli gates (and therefore a large
T-count), exactly the trade-off reported in Table II.

This implementation operates on an explicit permutation held in a numpy
array and applies candidate gates with vectorised updates; it supports the
classic unidirectional (output side only) mode and the bidirectional mode
that may also place gates on the input side when that needs fewer bit
flips.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate

__all__ = ["transformation_based_synthesis", "synthesize_permutation_gates"]


def _bits_of(value: int, num_lines: int) -> List[int]:
    return [line for line in range(num_lines) if (value >> line) & 1]


def _reduced_controls(available: int, protect_below: int, num_lines: int) -> List[int]:
    """Minimal control set taken from the 1-bits of ``available``.

    A gate with positive controls ``C`` triggers on some state ``v`` iff the
    bits of ``C`` are all set in ``v``; the smallest such ``v`` is exactly
    the mask of ``C``.  The MMD invariant only requires that no state below
    ``protect_below`` (the rows already fixed to the identity) triggers, so
    any subset of the available bits whose mask is at least ``protect_below``
    is safe.  Greedily keeping the highest available bits yields much smaller
    control sets (and therefore far cheaper Toffoli gates) than the textbook
    choice of using *all* available bits.
    """
    controls: List[int] = []
    mask = 0
    for line in reversed(_bits_of(available, num_lines)):
        if mask >= protect_below:
            break
        controls.append(line)
        mask |= 1 << line
    if mask < protect_below:  # pragma: no cover - guaranteed by the caller
        raise AssertionError("cannot build a safe control set")
    return sorted(controls)


def _gates_transforming(
    start: int, goal: int, num_lines: int, protect_below: int
) -> List[ToffoliGate]:
    """Toffoli gates (in application order) mapping ``start`` to ``goal``.

    The gates follow the MMD construction: bits present in ``goal`` but not
    in ``start`` are set using positive controls on (a reduced subset of)
    the current bits; bits present in ``start`` but not in ``goal`` are then
    cleared using controls on (a reduced subset of) the bits of ``goal``.
    Provided ``start``, ``goal`` and the control masks are all at least
    ``protect_below``, none of these gates disturbs the rows already mapped
    to themselves.
    """
    gates: List[ToffoliGate] = []
    current = start

    for line in _bits_of(goal & ~current, num_lines):
        controls = _reduced_controls(current, protect_below, num_lines)
        gates.append(ToffoliGate(tuple((c, True) for c in controls), line))
        current |= 1 << line

    for line in _bits_of(current & ~goal, num_lines):
        available = goal & ~(1 << line)
        controls = _reduced_controls(goal, protect_below, num_lines)
        if line in controls:  # the target may not be a control; fall back
            controls = _bits_of(available, num_lines)
        gates.append(ToffoliGate(tuple((c, True) for c in controls), line))
        current &= ~(1 << line)

    assert current == goal
    return gates


def _gate_list_cost(gates: List[ToffoliGate]) -> int:
    """T-count of a candidate gate list (used by the bidirectional choice)."""
    from repro.quantum.tcount import mct_t_count

    return sum(mct_t_count(gate.num_controls()) for gate in gates)


def _apply_output_gate(perm: np.ndarray, gate: ToffoliGate) -> None:
    care, polarity = gate.control_masks()
    mask = (perm & care) == polarity
    perm[mask] ^= 1 << gate.target


def _apply_input_gate(perm: np.ndarray, gate: ToffoliGate, states: np.ndarray) -> np.ndarray:
    care, polarity = gate.control_masks()
    mask = (states & care) == polarity
    indices = np.where(mask, states ^ (1 << gate.target), states)
    return perm[indices]


def synthesize_permutation_gates(
    permutation: Sequence[int], num_lines: int, bidirectional: bool = True
) -> List[ToffoliGate]:
    """Synthesise a Toffoli cascade realising ``permutation`` over ``num_lines``.

    Returns the gate list in application order (first gate applied first).
    """
    size = 1 << num_lines
    perm = np.asarray(permutation, dtype=np.int64).copy()
    if perm.shape != (size,):
        raise ValueError(f"permutation must have {size} entries")
    if sorted(perm.tolist()) != list(range(size)):
        raise ValueError("input is not a permutation")

    states = np.arange(size, dtype=np.int64)
    out_gates: List[ToffoliGate] = []
    in_gates: List[ToffoliGate] = []

    for row in range(size):
        image = int(perm[row])
        if image == row:
            continue

        output_gates = _gates_transforming(image, row, num_lines, row)
        input_gates: List[ToffoliGate] = []
        use_input_side = False
        if bidirectional:
            preimage = int(np.nonzero(perm == row)[0][0])
            if preimage != row:
                input_gates = _gates_transforming(row, preimage, num_lines, row)
                use_input_side = _gate_list_cost(input_gates) < _gate_list_cost(
                    output_gates
                )

        if not use_input_side:
            for gate in output_gates:
                _apply_output_gate(perm, gate)
                out_gates.append(gate)
        else:
            # Register the domain transformation row -> preimage; gates must
            # be registered in reverse construction order so that the
            # earliest constructed gate ends up closest to the circuit inputs.
            for gate in reversed(input_gates):
                perm = _apply_input_gate(perm, gate, states)
                in_gates.append(gate)

    assert np.array_equal(perm, states), "synthesis did not reach the identity"
    # id = OUT o f o IN  =>  f = IN_order + reversed(OUT_order) in time order.
    return list(in_gates) + list(reversed(out_gates))


def transformation_based_synthesis(
    permutation: Sequence[int],
    num_lines: int,
    bidirectional: bool = True,
    name: str = "tbs",
) -> ReversibleCircuit:
    """Synthesise a :class:`ReversibleCircuit` for a permutation.

    The circuit has ``num_lines`` anonymous lines; callers that synthesised
    an embedding should annotate the boundary roles afterwards (as
    :func:`repro.reversible.symbolic_tbs.symbolic_tbs` does).
    """
    gates = synthesize_permutation_gates(permutation, num_lines, bidirectional)
    circuit = ReversibleCircuit(name)
    for line in range(num_lines):
        circuit.add_line(f"x{line}")
    circuit.extend(gates)
    return circuit
