"""Transformation-based synthesis (Miller–Maslov–Dueck) of reversible functions.

The functional synthesis flow of the paper uses the symbolic variant [7] of
the classical transformation-based algorithm [5]: Toffoli gates are chosen
that transform the function into the identity; the collected gates, suitably
reordered, realise the function.  The algorithm never adds lines, so
combined with an optimum embedding it yields line-optimal circuits — at the
price of very large multiple-controlled Toffoli gates (and therefore a large
T-count), exactly the trade-off reported in Table II.

Two implementations live side by side:

* :func:`synthesize_permutation_gates` is the fast kernel.  It maintains a
  bit-sliced view of the permutation *and* of its inverse in lockstep (one
  packed big-int bit column per line, for the output-gate side and the
  input-gate side respectively), so applying a Toffoli gate is a handful of
  word-parallel bitwise operations — ``column[target] ^= AND(control
  columns)`` — instead of an O(2^n) masked update, and the bidirectional
  image/preimage lookups are point/equality queries on those columns
  instead of a full ``np.nonzero(perm == row)`` scan per row.  Candidate
  gates are costed on integer control masks alone; :class:`ToffoliGate`
  objects are built only for the side that wins the bidirectional
  comparison.
* :func:`synthesize_permutation_gates_reference` is the original per-row
  scan kept verbatim as the oracle: the fast kernel is property-tested to
  reproduce its output gate for gate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.quantum.tcount import mct_t_count
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate

__all__ = [
    "MAX_TBS_LINES",
    "transformation_based_synthesis",
    "synthesize_permutation_masks",
    "synthesize_permutation_gates",
    "synthesize_permutation_gates_reference",
]

#: Hard cap on the number of circuit lines accepted by the explicit
#: (truth-table) synthesis entry points.  The algorithm materialises the
#: full ``2^n`` state table, so beyond this the allocation alone is tens of
#: gigabytes; callers get a clear :class:`ValueError` up front instead of an
#: opaque ``MemoryError`` (or a machine grinding into swap).
MAX_TBS_LINES = 24

#: T-count per control arity, memoised once per process (the same handful of
#: arities is costed for every row of every synthesis run).
_MCT_COST_MEMO: Dict[int, int] = {}


def _mct_cost(num_controls: int) -> int:
    cost = _MCT_COST_MEMO.get(num_controls)
    if cost is None:
        cost = _MCT_COST_MEMO[num_controls] = mct_t_count(num_controls)
    return cost


def _check_num_lines(num_lines: int) -> None:
    if num_lines > MAX_TBS_LINES:
        raise ValueError(
            f"transformation-based synthesis over {num_lines} lines would "
            f"need a 2^{num_lines}-entry state table; the explicit kernel "
            f"is capped at MAX_TBS_LINES={MAX_TBS_LINES} lines"
        )


def _bits_of(value: int, num_lines: int) -> List[int]:
    return [line for line in range(num_lines) if (value >> line) & 1]


def _reduced_controls(available: int, protect_below: int, num_lines: int) -> List[int]:
    """Minimal control set taken from the 1-bits of ``available``.

    A gate with positive controls ``C`` triggers on some state ``v`` iff the
    bits of ``C`` are all set in ``v``; the smallest such ``v`` is exactly
    the mask of ``C``.  The MMD invariant only requires that no state below
    ``protect_below`` (the rows already fixed to the identity) triggers, so
    any subset of the available bits whose mask is at least ``protect_below``
    is safe.  Greedily keeping the highest available bits yields much smaller
    control sets (and therefore far cheaper Toffoli gates) than the textbook
    choice of using *all* available bits.
    """
    controls: List[int] = []
    mask = 0
    for line in reversed(_bits_of(available, num_lines)):
        if mask >= protect_below:
            break
        controls.append(line)
        mask |= 1 << line
    if mask < protect_below:  # pragma: no cover - guaranteed by the caller
        raise AssertionError("cannot build a safe control set")
    return sorted(controls)


def _reduced_controls_mask(available: int, protect_below: int) -> int:
    """Bit-mask twin of :func:`_reduced_controls` (greedy highest bits)."""
    mask = 0
    avail = available
    while mask < protect_below:
        line = avail.bit_length() - 1
        if line < 0:  # pragma: no cover - guaranteed by the caller
            raise AssertionError("cannot build a safe control set")
        mask |= 1 << line
        avail &= ~(1 << line)
    return mask


def _gates_transforming(
    start: int, goal: int, num_lines: int, protect_below: int
) -> List[ToffoliGate]:
    """Toffoli gates (in application order) mapping ``start`` to ``goal``.

    The gates follow the MMD construction: bits present in ``goal`` but not
    in ``start`` are set using positive controls on (a reduced subset of)
    the current bits; bits present in ``start`` but not in ``goal`` are then
    cleared using controls on (a reduced subset of) the bits of ``goal``.
    Provided ``start``, ``goal`` and the control masks are all at least
    ``protect_below``, none of these gates disturbs the rows already mapped
    to themselves.
    """
    gates: List[ToffoliGate] = []
    current = start

    for line in _bits_of(goal & ~current, num_lines):
        controls = _reduced_controls(current, protect_below, num_lines)
        gates.append(ToffoliGate(tuple((c, True) for c in controls), line))
        current |= 1 << line

    for line in _bits_of(current & ~goal, num_lines):
        available = goal & ~(1 << line)
        controls = _reduced_controls(goal, protect_below, num_lines)
        if line in controls:  # the target may not be a control; fall back
            controls = _bits_of(available, num_lines)
        gates.append(ToffoliGate(tuple((c, True) for c in controls), line))
        current &= ~(1 << line)

    assert current == goal
    return gates


def _gate_masks_transforming(
    start: int, goal: int, protect_below: int
) -> Tuple[List[Tuple[int, int]], int]:
    """Mask-level twin of :func:`_gates_transforming`.

    Returns ``(controls_mask, target_line)`` pairs in application order and
    the total T-count of the candidate, without constructing
    :class:`ToffoliGate` objects.  The target of a phase-two gate is by
    construction never part of the reduced control set (targets come from
    ``current & ~goal`` while controls come from ``goal``), so the
    reference's fallback branch cannot fire and is not replicated here; the
    phase-two control mask only depends on ``goal`` and is computed once.
    """
    masks: List[Tuple[int, int]] = []
    cost = 0
    current = start
    memo = _MCT_COST_MEMO

    pending = goal & ~current
    while pending:
        bit = pending & -pending
        # Inlined _reduced_controls_mask(current, protect_below) — this is
        # the innermost loop of candidate construction.
        controls = 0
        avail = current
        while controls < protect_below:
            line = avail.bit_length() - 1
            if line < 0:  # pragma: no cover - guaranteed by the caller
                raise AssertionError("cannot build a safe control set")
            top = 1 << line
            controls |= top
            avail ^= top
        masks.append((controls, bit.bit_length() - 1))
        arity = controls.bit_count()
        gate_cost = memo.get(arity)
        if gate_cost is None:
            gate_cost = _mct_cost(arity)
        cost += gate_cost
        current |= bit
        pending &= pending - 1

    pending = current & ~goal
    if pending:
        controls = _reduced_controls_mask(goal, protect_below)
        per_gate = _mct_cost(controls.bit_count())
        while pending:
            bit = pending & -pending
            masks.append((controls, bit.bit_length() - 1))
            cost += per_gate
            pending &= pending - 1

    return masks, cost


def _gate_from_mask(controls_mask: int, target: int, num_lines: int) -> ToffoliGate:
    controls: List[Tuple[int, bool]] = []
    mask = controls_mask
    while mask:
        bit = mask & -mask
        controls.append((bit.bit_length() - 1, True))
        mask ^= bit
    return ToffoliGate(tuple(controls), target)


def _gate_list_cost(gates: List[ToffoliGate]) -> int:
    """T-count of a candidate gate list (used by the bidirectional choice)."""
    return sum(_mct_cost(gate.num_controls()) for gate in gates)


def _apply_output_gate(perm: np.ndarray, gate: ToffoliGate) -> None:
    care, polarity = gate.control_masks()
    mask = (perm & care) == polarity
    perm[mask] ^= 1 << gate.target


def _apply_input_gate(perm: np.ndarray, gate: ToffoliGate, states: np.ndarray) -> np.ndarray:
    care, polarity = gate.control_masks()
    mask = (states & care) == polarity
    indices = np.where(mask, states ^ (1 << gate.target), states)
    return perm[indices]


def _pack_column(values: np.ndarray, line: int) -> int:
    """Bit ``line`` of every entry of ``values``, packed into one big int."""
    bits = ((values >> line) & 1).astype(np.uint8)
    return int.from_bytes(np.packbits(bits, bitorder="little").tobytes(), "little")


def _unpack_columns(columns: List[int], size: int) -> np.ndarray:
    """Inverse of :func:`_pack_column`: bit columns back to a value array."""
    values = np.zeros(size, dtype=np.int64)
    num_bytes = (size + 7) // 8
    for line, column in enumerate(columns):
        raw = np.frombuffer(column.to_bytes(num_bytes, "little"), dtype=np.uint8)
        bits = np.unpackbits(raw, bitorder="little")[:size]
        values |= bits.astype(np.int64) << line
    return values


def synthesize_permutation_masks(
    permutation: Sequence[int], num_lines: int, bidirectional: bool = True
) -> List[Tuple[int, int]]:
    """Synthesise a Toffoli cascade realising ``permutation`` over ``num_lines``.

    Returns ``(controls_mask, target_line)`` pairs in application order
    (first gate applied first) — every control is positive, so the pair is
    the complete gate description and feeds straight into
    :meth:`~repro.reversible.circuit.ReversibleCircuit.extend_masks`
    without constructing a single :class:`ToffoliGate`.
    :func:`synthesize_permutation_gates` materialises the same cascade as
    gate objects, gate-for-gate equivalent to
    :func:`synthesize_permutation_gates_reference`.

    The kernel is bit-sliced.  With ``Gout``/``Gin`` the output/input gate
    cascades collected so far, the current function is
    ``perm = Gout o P0 o Gin``; the kernel maintains ``X = Gout o P0`` and
    ``Y = (P0 o Gin)^-1`` as ``num_lines`` packed bit columns (bit ``x`` of
    column ``j`` is bit ``j`` of the image of ``x``).  An all-positive
    Toffoli gate then costs a handful of word-parallel big-int operations on
    the table it composes into from the left — ``X`` for output gates
    (``perm <- g o perm``), ``Y`` for input gates (``perm <- perm o g``,
    i.e. ``Y <- g o Y``):
    ``match = AND(columns[control] for control in C); columns[t] ^= match``.
    The per-row image and preimage come from point/equality queries on the
    two tables (``perm = X o P0^-1 o Y^-1`` and ``perm^-1 = Y o P0 o X^-1``),
    replacing the reference's O(2^n) ``np.nonzero(perm == row)`` scan.
    """
    _check_num_lines(num_lines)
    size = 1 << num_lines
    perm0 = np.asarray(permutation, dtype=np.int64).copy()
    if perm0.shape != (size,):
        raise ValueError(f"permutation must have {size} entries")
    if sorted(perm0.tolist()) != list(range(size)):
        raise ValueError("input is not a permutation")

    states = np.arange(size, dtype=np.int64)
    inv0 = np.empty(size, dtype=np.int64)
    inv0[perm0] = states
    p0 = perm0.tolist()
    p0_inv = inv0.tolist()

    full = (1 << size) - 1
    col_x = [_pack_column(perm0, line) for line in range(num_lines)]
    col_y = [_pack_column(inv0, line) for line in range(num_lines)]
    # Complement columns are kept in lockstep (complementing commutes with
    # the XOR updates) so equality queries need no fresh big-int negations.
    ncol_x = [column ^ full for column in col_x]
    ncol_y = [column ^ full for column in col_y]
    lines = range(num_lines)

    def preimage_query(columns: List[int], ncolumns: List[int], value: int) -> int:
        # Equality match over the packed columns; exactly one bit survives.
        match = full
        for line in lines:
            match &= columns[line] if (value >> line) & 1 else ncolumns[line]
        return match.bit_length() - 1

    def point_query(columns: List[int], x: int) -> int:
        value = 0
        for line in lines:
            value |= ((columns[line] >> x) & 1) << line
        return value

    out_gates: List[Tuple[int, int]] = []
    in_gates: List[Tuple[int, int]] = []

    for row in range(size):
        image = point_query(col_x, p0_inv[preimage_query(col_y, ncol_y, row)])
        if image == row:
            continue

        output_masks, output_cost = _gate_masks_transforming(image, row, row)
        input_masks: List[Tuple[int, int]] = []
        use_input_side = False
        if bidirectional:
            preimage = point_query(col_y, p0[preimage_query(col_x, ncol_x, row)])
            if preimage != row:
                input_masks, input_cost = _gate_masks_transforming(row, preimage, row)
                use_input_side = input_cost < output_cost

        if not use_input_side:
            for controls_mask, target in output_masks:
                match = full
                controls = controls_mask
                while controls:
                    bit = controls & -controls
                    match &= col_x[bit.bit_length() - 1]
                    controls ^= bit
                col_x[target] ^= match
                ncol_x[target] ^= match
                out_gates.append((controls_mask, target))
        else:
            # Register the domain transformation row -> preimage; gates must
            # be registered in reverse construction order so that the
            # earliest constructed gate ends up closest to the circuit inputs.
            for controls_mask, target in reversed(input_masks):
                match = full
                controls = controls_mask
                while controls:
                    bit = controls & -controls
                    match &= col_y[bit.bit_length() - 1]
                    controls ^= bit
                col_y[target] ^= match
                ncol_y[target] ^= match
                in_gates.append((controls_mask, target))

    # perm = X o P0^-1 o Y^-1 must now be the identity.
    x_arr = _unpack_columns(col_x, size)
    y_arr = _unpack_columns(col_y, size)
    y_inv = np.empty(size, dtype=np.int64)
    y_inv[y_arr] = states
    assert np.array_equal(
        x_arr[inv0[y_inv]], states
    ), "synthesis did not reach the identity"
    # id = OUT o f o IN  =>  f = IN_order + reversed(OUT_order) in time order.
    return list(in_gates) + list(reversed(out_gates))


def synthesize_permutation_gates(
    permutation: Sequence[int], num_lines: int, bidirectional: bool = True
) -> List[ToffoliGate]:
    """Gate-object view of :func:`synthesize_permutation_masks`.

    The same reduced control masks recur across many rows (the greedy
    reduction favours the topmost lines), so the immutable
    :class:`ToffoliGate` objects are memoised and shared across the
    cascade; the list is gate-for-gate equivalent to
    :func:`synthesize_permutation_gates_reference`.
    """
    masks = synthesize_permutation_masks(permutation, num_lines, bidirectional)
    gate_memo: Dict[Tuple[int, int], ToffoliGate] = {}
    gates: List[ToffoliGate] = []
    for controls_mask, target in masks:
        gate = gate_memo.get((controls_mask, target))
        if gate is None:
            gate = gate_memo[(controls_mask, target)] = _gate_from_mask(
                controls_mask, target, num_lines
            )
        gates.append(gate)
    return gates


def synthesize_permutation_gates_reference(
    permutation: Sequence[int], num_lines: int, bidirectional: bool = True
) -> List[ToffoliGate]:
    """Original per-row-scan implementation, kept as the oracle.

    Scans the whole state table per preimage lookup and per gate
    application; :func:`synthesize_permutation_gates` reproduces its output
    gate for gate at a fraction of the cost.
    """
    size = 1 << num_lines
    perm = np.asarray(permutation, dtype=np.int64).copy()
    if perm.shape != (size,):
        raise ValueError(f"permutation must have {size} entries")
    if sorted(perm.tolist()) != list(range(size)):
        raise ValueError("input is not a permutation")

    states = np.arange(size, dtype=np.int64)
    out_gates: List[ToffoliGate] = []
    in_gates: List[ToffoliGate] = []

    for row in range(size):
        image = int(perm[row])
        if image == row:
            continue

        output_gates = _gates_transforming(image, row, num_lines, row)
        input_gates: List[ToffoliGate] = []
        use_input_side = False
        if bidirectional:
            preimage = int(np.nonzero(perm == row)[0][0])
            if preimage != row:
                input_gates = _gates_transforming(row, preimage, num_lines, row)
                use_input_side = _gate_list_cost(input_gates) < _gate_list_cost(
                    output_gates
                )

        if not use_input_side:
            for gate in output_gates:
                _apply_output_gate(perm, gate)
                out_gates.append(gate)
        else:
            # Register the domain transformation row -> preimage; gates must
            # be registered in reverse construction order so that the
            # earliest constructed gate ends up closest to the circuit inputs.
            for gate in reversed(input_gates):
                perm = _apply_input_gate(perm, gate, states)
                in_gates.append(gate)

    assert np.array_equal(perm, states), "synthesis did not reach the identity"
    # id = OUT o f o IN  =>  f = IN_order + reversed(OUT_order) in time order.
    return list(in_gates) + list(reversed(out_gates))


def transformation_based_synthesis(
    permutation: Sequence[int],
    num_lines: int,
    bidirectional: bool = True,
    name: str = "tbs",
) -> ReversibleCircuit:
    """Synthesise a :class:`ReversibleCircuit` for a permutation.

    The circuit has ``num_lines`` anonymous lines; callers that synthesised
    an embedding should annotate the boundary roles afterwards (as
    :func:`repro.reversible.symbolic_tbs.symbolic_tbs` does).

    Raises :class:`ValueError` if ``num_lines`` exceeds :data:`MAX_TBS_LINES`
    (the explicit ``2^n`` state table would not be allocatable).
    """
    _check_num_lines(num_lines)
    masks = synthesize_permutation_masks(permutation, num_lines, bidirectional)
    circuit = ReversibleCircuit(name)
    for line in range(num_lines):
        circuit.add_line(f"x{line}")
    # All controls are positive, so care == polarity == the controls mask and
    # the cascade lands in the columnar store without creating gate objects.
    circuit.extend_masks((mask, mask, target) for mask, target in masks)
    return circuit
