"""ESOP-based reversible synthesis (the REVS flow of Section IV-B).

Every product term of a multi-output ESOP cover becomes one
multiple-controlled Toffoli gate whose controls are the term's literals
(with matching polarities) and whose target is the corresponding output
line.  The circuit therefore uses ``n + m`` lines for an ``n``-input,
``m``-output function (``2n`` for the reciprocal), and the largest gate has
at most ``n`` controls — much smaller than the gates produced by functional
synthesis, hence the much smaller T-count of Table III.

Two REVS features are modelled:

* **shared product terms** — a cube feeding several outputs is realised once
  and fanned out with CNOT gates through a scratch ancilla (computed,
  copied, uncomputed).  The paper describes copying directly from the first
  output line; that shortcut is only correct while that line still holds
  exactly the cube value, so the scratch-ancilla variant is used here (same
  qualitative effect, conservative by one extra Toffoli).  Because the
  ancilla would push the line count beyond the paper's ``2n``, it is only
  enabled together with factoring; at ``p = 0`` shared terms are repeated
  per output,
* **factoring (parameter ``p``)** — for ``p > 0`` common sub-cubes (up to
  ``p + 1`` literals, built up over ``p`` rounds of pairwise extraction) are
  computed once on additional ancilla lines and reused as single controls,
  trading additional qubits for a lower T-count, as in the ``p = 1`` columns
  of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.esop import EsopCover
from repro.reversible.circuit import ReversibleCircuit

__all__ = ["esop_synthesis"]


# A control atom is either an input variable with a polarity or a factor
# ancilla line (always positive).
_Atom = Tuple[str, int, bool]  # ("var", index, polarity) | ("factor", line, True)


@dataclass
class _Term:
    atoms: List[_Atom]
    outputs: int


def _atom_key(atom: _Atom) -> Tuple[str, int, bool]:
    return atom


def _extract_factors(
    terms: List[_Term],
    circuit: ReversibleCircuit,
    input_line: Dict[int, int],
    max_rounds: int,
) -> List[Tuple[int, Tuple[_Atom, _Atom]]]:
    """Greedy pairwise sub-cube extraction.

    Returns the list of allocated factor lines with the atom pair each one
    computes; terms are rewritten in place to use the factor atoms.
    """
    factors: List[Tuple[int, Tuple[_Atom, _Atom]]] = []
    for _ in range(max_rounds):
        # Count co-occurring atom pairs.
        counts: Dict[Tuple[_Atom, _Atom], int] = {}
        for term in terms:
            atoms = sorted(term.atoms, key=_atom_key)
            for i in range(len(atoms)):
                for j in range(i + 1, len(atoms)):
                    pair = (atoms[i], atoms[j])
                    counts[pair] = counts.get(pair, 0) + 1
        if not counts:
            break
        pair, occurrences = max(counts.items(), key=lambda item: (item[1], item[0]))
        if occurrences < 2:
            break

        line = circuit.add_constant_line(0, name=f"f{len(factors)}")
        factors.append((line, pair))
        pair_set = set(pair)
        replacement: _Atom = ("factor", line, True)
        for term in terms:
            if pair_set.issubset(set(term.atoms)):
                term.atoms = [atom for atom in term.atoms if atom not in pair_set]
                term.atoms.append(replacement)
    return factors


def _atom_control(atom: _Atom, input_line: Dict[int, int]) -> Tuple[int, bool]:
    kind, index, polarity = atom
    if kind == "var":
        return input_line[index], polarity
    return index, polarity  # factor atoms store the line directly


def _factor_controls(
    pair: Tuple[_Atom, _Atom], input_line: Dict[int, int]
) -> Tuple[Tuple[int, bool], ...]:
    return tuple(_atom_control(atom, input_line) for atom in pair)


def esop_synthesis(
    cover: EsopCover,
    p: int = 0,
    share_threshold: int = 3,
    name: str = "esop",
) -> ReversibleCircuit:
    """Synthesise a reversible circuit from a multi-output ESOP cover.

    ``p`` is the factoring parameter of the REVS flow (0 disables
    factoring).  ``share_threshold`` is the minimum number of outputs a
    shared term must feed before the scratch-ancilla fan-out is used instead
    of repeating the Toffoli gate per output.
    """
    if p < 0:
        raise ValueError("the factoring parameter p must be non-negative")

    circuit = ReversibleCircuit(name)
    input_line: Dict[int, int] = {}
    for i in range(cover.num_inputs):
        input_line[i] = circuit.add_input_line(i)
    output_line: Dict[int, int] = {}
    for j in range(cover.num_outputs):
        line = circuit.add_constant_line(0, name=f"y{j}")
        circuit.set_output(line, j)
        output_line[j] = line

    terms = [
        _Term(
            atoms=[("var", var, positive) for var, positive in term.cube.literals()],
            outputs=term.outputs,
        )
        for term in cover.terms
    ]

    factors: List[Tuple[int, Tuple[_Atom, _Atom]]] = []
    if p > 0:
        factors = _extract_factors(terms, circuit, input_line, max_rounds=p * max(1, cover.num_outputs))

    # Shared-term fan-out through a scratch ancilla is only enabled together
    # with factoring (p > 0): the paper's p = 0 configuration uses exactly
    # 2n lines, so at p = 0 a term feeding several outputs is simply realised
    # once per output.
    needs_scratch = p > 0 and any(
        bin(term.outputs).count("1") >= share_threshold for term in terms
    )
    scratch = circuit.add_constant_line(0, name="scratch") if needs_scratch else None

    # Gate sites below go through append_controls: ascending control lists
    # (cube literals are emitted in ascending variable order) take the
    # mask-native path into the columnar store, anything else falls back to
    # an equivalent gate object transparently.

    # Compute the factors (they only depend on inputs / earlier factors).
    for line, pair in factors:
        circuit.append_controls(_factor_controls(pair, input_line), line)

    # Realise every product term.
    for term in terms:
        controls = tuple(_atom_control(atom, input_line) for atom in term.atoms)
        targets = [output_line[j] for j in range(cover.num_outputs) if (term.outputs >> j) & 1]
        if len(targets) >= share_threshold and scratch is not None:
            circuit.append_controls(controls, scratch)
            for target in targets:
                circuit.append_controls(((scratch, True),), target)
            circuit.append_controls(controls, scratch)
        else:
            for target in targets:
                circuit.append_controls(controls, target)

    # Uncompute the factor ancillas (reverse order) so they return to zero.
    for line, pair in reversed(factors):
        circuit.append_controls(_factor_controls(pair, input_line), line)

    return circuit
