"""Verification of synthesised reversible circuits against their specification.

This plays the role of ABC's ``cec`` step in the paper's experimental
methodology: every circuit produced by a flow is checked against the
original irreversible function.  Checking is exhaustive over the primary
inputs (the bit-widths synthesised in this reproduction keep ``2**n``
manageable); a sampling mode is available for quick checks of larger
designs.

The heavy lifting is done by the bit-parallel simulation core of
:mod:`repro.verify.bitsim`: the circuit is evaluated on 64 input patterns
per machine word, so the exhaustive check costs one sweep over the gate
cascade per 64 minterms instead of one sweep per minterm.  This module is a
thin wrapper that adds the circuit-boundary semantics (ancilla
restoration) and the historical result type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.logic.truth_table import TruthTable
from repro.reversible.circuit import ReversibleCircuit

__all__ = ["VerificationResult", "verify_circuit"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of a circuit-versus-specification check."""

    equivalent: bool
    complete: bool
    counterexample: Optional[int] = None
    message: str = ""

    def __bool__(self) -> bool:
        return self.equivalent


def verify_circuit(
    circuit: ReversibleCircuit,
    spec: TruthTable,
    check_clean_ancillas: bool = False,
    num_samples: Optional[int] = None,
    seed: int = 1,
) -> VerificationResult:
    """Check that a reversible circuit realises ``spec`` on its outputs.

    For every (sampled) primary-input word the circuit is simulated from its
    declared initial state (inputs + constants) and the output lines are
    compared with the specification.  With ``check_clean_ancillas`` the
    constant lines must also return to their initial values (used for the
    Bennett-style flows that promise clean ancillas).

    ``num_samples`` of ``None`` checks exhaustively; a sample budget of at
    least ``2**n`` also degrades to the exhaustive check (no duplicate
    draws) and reports ``complete=True``.
    """
    # Imported lazily: repro.verify.bitsim itself imports the circuit
    # types, so a module-level import here would be circular.
    from repro.verify import bitsim

    if circuit.num_inputs() != spec.num_inputs:
        return VerificationResult(
            False, True, None, "circuit and specification input counts differ"
        )
    if circuit.num_outputs() != spec.num_outputs:
        return VerificationResult(
            False, True, None, "circuit and specification output counts differ"
        )

    total = 1 << spec.num_inputs
    if num_samples is None or num_samples >= total:
        batch = bitsim.exhaustive_batch(spec.num_inputs)
    else:
        batch = bitsim.random_batch(spec.num_inputs, num_samples, seed=seed)
    complete = batch.exhaustive

    state = bitsim.simulate_reversible_states(circuit, batch)
    outputs = bitsim.outputs_from_states(circuit, state)
    expected = bitsim.simulate_truth_table(spec, batch)
    index = bitsim.first_difference(outputs, expected, batch)
    if index is not None:
        x = batch.minterm(index)
        got = bitsim.output_word_at(outputs, index)
        return VerificationResult(
            False,
            complete,
            x,
            f"output mismatch on input {x}: got {got}, "
            f"expected {bitsim.output_word_at(expected, index)}",
        )

    if check_clean_ancillas:
        mask = batch.tail_mask()
        all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        for line, init in circuit.constant_lines().items():
            info = circuit.line_info(line)
            if info.is_output() or info.garbage:
                continue
            wanted = (mask & all_ones) if init else np.zeros_like(mask)
            diff = state[line] ^ wanted
            nonzero = np.nonzero(diff)[0]
            if nonzero.size:
                word = int(nonzero[0])
                bits = int(diff[word])
                bit = (bits & -bits).bit_length() - 1
                x = batch.minterm(word * 64 + bit)
                return VerificationResult(
                    False,
                    complete,
                    x,
                    f"ancilla line {line} not restored on input {x}",
                )
    return VerificationResult(True, complete, None, "ok")
