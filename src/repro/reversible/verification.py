"""Verification of synthesised reversible circuits against their specification.

This plays the role of ABC's ``cec`` step in the paper's experimental
methodology: every circuit produced by a flow is checked against the
original irreversible function.  Checking is exhaustive over the primary
inputs (the bit-widths synthesised in this reproduction keep ``2**n``
manageable); a sampling mode is available for quick checks of larger
designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.logic.truth_table import TruthTable
from repro.reversible.circuit import ReversibleCircuit

__all__ = ["VerificationResult", "verify_circuit"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of a circuit-versus-specification check."""

    equivalent: bool
    complete: bool
    counterexample: Optional[int] = None
    message: str = ""

    def __bool__(self) -> bool:
        return self.equivalent


def verify_circuit(
    circuit: ReversibleCircuit,
    spec: TruthTable,
    check_clean_ancillas: bool = False,
    num_samples: Optional[int] = None,
    seed: int = 1,
) -> VerificationResult:
    """Check that a reversible circuit realises ``spec`` on its outputs.

    For every (sampled) primary-input word the circuit is simulated from its
    declared initial state (inputs + constants) and the output lines are
    compared with the specification.  With ``check_clean_ancillas`` the
    constant lines must also return to their initial values (used for the
    Bennett-style flows that promise clean ancillas).
    """
    if circuit.num_inputs() != spec.num_inputs:
        return VerificationResult(
            False, True, None, "circuit and specification input counts differ"
        )
    if circuit.num_outputs() != spec.num_outputs:
        return VerificationResult(
            False, True, None, "circuit and specification output counts differ"
        )

    total = 1 << spec.num_inputs
    if num_samples is None or num_samples >= total:
        inputs = range(total)
        complete = True
    else:
        rng = np.random.default_rng(seed)
        inputs = sorted(int(x) for x in rng.integers(0, total, size=num_samples))
        complete = False

    constant_lines = circuit.constant_lines()
    for x in inputs:
        state = circuit.final_state(x)
        value = 0
        for output_index, line in circuit.output_lines().items():
            if (state >> line) & 1:
                value |= 1 << output_index
        if value != spec.evaluate(x):
            return VerificationResult(
                False,
                complete,
                x,
                f"output mismatch on input {x}: got {value}, "
                f"expected {spec.evaluate(x)}",
            )
        if check_clean_ancillas:
            for line, init in constant_lines.items():
                info = circuit.line_info(line)
                if info.is_output() or info.garbage:
                    continue
                if (state >> line) & 1 != init:
                    return VerificationResult(
                        False,
                        complete,
                        x,
                        f"ancilla line {line} not restored on input {x}",
                    )
    return VerificationResult(True, complete, None, "ok")
