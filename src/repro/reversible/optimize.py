"""Post-synthesis optimisation of reversible circuits.

The flows of the paper hand their Toffoli cascades directly to the cost
model; real tool chains (RevKit, REVS) run cheap peephole passes first.
This module provides the standard ones:

* :func:`cancel_adjacent_gates` — two identical gates in a row are the
  identity and are removed (Toffoli gates are involutions).  Gates are
  allowed to commute past each other when they touch disjoint line sets or
  when neither gate's target is involved in the other gate, which makes the
  cancellation pass considerably more effective than a purely local scan.
* :func:`merge_not_gates` — a NOT gate adjacent to a gate controlling the
  same line is absorbed by flipping that control's polarity.
* :func:`remove_trivial_gates` — gates whose control list is statically
  unsatisfiable (a line controlled with both polarities) are dropped, and
  duplicate control entries are normalised away.
* :func:`optimize_circuit` — the standard script: trivial-gate removal,
  NOT merging and cancellation, iterated to a fixed point.

Each pass runs on the packed mask columns of the circuit's
:class:`~repro.reversible.gatestore.GateStore` — equality, commutation and
the NOT-absorption rewrite are all pure mask arithmetic there — and
returns the *input circuit object* when it finds nothing to rewrite, so a
pipeline that iterates the passes to a fixed point keeps the store's
cached statistics alive across rounds.  The mask formulation is exact only
while the store is canonical (strictly ascending, duplicate-free control
lines on every gate); otherwise the pass delegates to its ``*_reference``
twin — the original per-gate-object implementation, kept both as that
fallback and as the oracle the property tests compare against.  Either
way the output cascade is gate-for-gate identical to the reference.

All passes preserve the circuit function exactly (asserted by the
test-suite via permutation comparison on small circuits and random
simulation on larger ones).  They are also registered with the
:mod:`repro.opt` pass manager as ``rev_cancel`` / ``rev_not_merge`` /
``rev_trivial`` (aliases ``rc`` / ``rn`` / ``rt``) with the default
pipeline ``rev-default``, so reversible cascades participate in the same
pipeline specs, keep-best tracking and differential guards as the logic
networks.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate
from repro.reversible.gatestore import GateStore

__all__ = [
    "cancel_adjacent_gates",
    "cancel_adjacent_gates_reference",
    "merge_not_gates",
    "merge_not_gates_reference",
    "remove_trivial_gates",
    "remove_trivial_gates_reference",
    "optimize_circuit",
]


def _gates_commute(first: ToffoliGate, second: ToffoliGate) -> bool:
    """Sufficient (not necessary) condition for two gates to commute.

    Two Toffoli gates commute when neither gate's target line is used by the
    other gate (as control or target), because then each gate leaves the
    other's control values and target untouched.  They also commute when
    both targets coincide... but that case is already covered by equality
    cancellation, so it is not needed here.
    """
    first_lines = set(first.lines())
    second_lines = set(second.lines())
    if first.target in second_lines:
        return False
    if second.target in first_lines:
        return False
    return True


def cancel_adjacent_gates(circuit: ReversibleCircuit) -> ReversibleCircuit:
    """Remove pairs of identical gates that can be brought next to each other.

    Mask-native: on a canonical gate store two gates are equal iff their
    ``(care, polarity, target)`` triples are, and the commutation test of
    :func:`_gates_commute` is two AND-tests against each gate's *touched*
    mask (``care | 1 << target``).  The backward scan of the reference is
    replayed on the mask columns; when no pair cancels, the input circuit
    is returned unchanged.
    """
    store = circuit.gate_store()
    if not store.is_canonical():
        return cancel_adjacent_gates_reference(circuit)
    in_targets, in_care, in_polarity, in_raw = store.columns()

    targets: List[int] = []
    cares: List[int] = []
    polarities: List[int] = []
    raws: List[int] = []
    touched: List[int] = []
    cancelled_any = False
    for gate_index in range(len(in_targets)):
        target = in_targets[gate_index]
        care = in_care[gate_index]
        polarity = in_polarity[gate_index]
        target_bit = 1 << target
        gate_touched = care | target_bit
        index = len(targets) - 1
        cancelled = False
        while index >= 0:
            if (
                targets[index] == target
                and cares[index] == care
                and polarities[index] == polarity
            ):
                del targets[index]
                del cares[index]
                del polarities[index]
                del raws[index]
                del touched[index]
                cancelled = True
                cancelled_any = True
                break
            if touched[index] & target_bit or gate_touched & (
                1 << targets[index]
            ):
                break
            index -= 1
        if not cancelled:
            targets.append(target)
            cares.append(care)
            polarities.append(polarity)
            raws.append(in_raw[gate_index])
            touched.append(gate_touched)

    if not cancelled_any:
        return circuit
    return circuit._with_store(
        GateStore.from_columns(targets, cares, polarities, raws)
    )


def cancel_adjacent_gates_reference(
    circuit: ReversibleCircuit,
) -> ReversibleCircuit:
    """Per-gate-object cancellation — oracle for :func:`cancel_adjacent_gates`."""
    gates = circuit.gates()
    result: List[ToffoliGate] = []
    for gate in gates:
        # Try to find a matching gate to cancel with, scanning backwards over
        # gates this one commutes with.
        index = len(result) - 1
        cancelled = False
        while index >= 0:
            candidate = result[index]
            if candidate == gate:
                del result[index]
                cancelled = True
                break
            if not _gates_commute(candidate, gate):
                break
            index -= 1
        if not cancelled:
            result.append(gate)

    return circuit.with_gates(result)


def merge_not_gates(circuit: ReversibleCircuit) -> ReversibleCircuit:
    """Absorb NOT gates into the control polarities of neighbouring gates.

    A NOT on line ``l`` followed (eventually) by a gate with a control on
    ``l`` can be pushed into that control by flipping its polarity, provided
    the NOT commutes with every gate in between and a matching NOT exists
    later to push into as well — the simple variant implemented here absorbs
    a NOT pair around a single gate:  ``X(l) . G(l...) . X(l)`` becomes
    ``G(l')``.  This is the pattern produced by negative-control emulation
    and by the OR blocks of the hierarchical flow.

    Mask-native: a NOT is a gate with an empty care mask, the pattern test
    is three integer comparisons, and the absorption itself is one XOR into
    the middle gate's polarity mask.  Rewrites only ever shorten the window
    around position ``i``, so resuming the scan at ``max(0, i - 2)`` visits
    exactly the matches the restart-from-zero reference loop finds, in the
    same order.  When no pattern matches, the input circuit is returned
    unchanged.
    """
    store = circuit.gate_store()
    if not store.is_canonical():
        return merge_not_gates_reference(circuit)
    in_targets, in_care, in_polarity, in_raw = store.columns()

    targets = list(in_targets)
    cares = list(in_care)
    polarities = list(in_polarity)
    raws = list(in_raw)
    changed = False
    i = 0
    while i + 2 < len(targets):
        line = targets[i]
        if (
            cares[i] == 0
            and cares[i + 2] == 0
            and targets[i + 2] == line
            and targets[i + 1] != line
            and (cares[i + 1] >> line) & 1
        ):
            polarities[i + 1] ^= 1 << line
            del targets[i + 2], targets[i]
            del cares[i + 2], cares[i]
            del polarities[i + 2], polarities[i]
            del raws[i + 2], raws[i]
            changed = True
            i = max(0, i - 2)
        else:
            i += 1

    if not changed:
        return circuit
    return circuit._with_store(
        GateStore.from_columns(targets, cares, polarities, raws)
    )


def merge_not_gates_reference(circuit: ReversibleCircuit) -> ReversibleCircuit:
    """Per-gate-object NOT merging — oracle for :func:`merge_not_gates`."""
    gates = circuit.gates()
    result: List[ToffoliGate] = list(gates)
    changed = True
    while changed:
        changed = False
        for i in range(len(result) - 2):
            first = result[i]
            middle = result[i + 1]
            last = result[i + 2]
            if not (first.is_not() and last.is_not() and first.target == last.target):
                continue
            line = first.target
            if middle.target == line or middle.has_duplicate_controls():
                # Duplicate entries would be silently collapsed by the dict
                # below; leave such gates to remove_trivial_gates first.
                continue
            controls = dict(middle.controls)
            if line not in controls:
                continue
            controls[line] = not controls[line]
            result[i + 1] = ToffoliGate(tuple(controls.items()), middle.target)
            # Remove the surrounding NOT gates (last first to keep indices).
            del result[i + 2]
            del result[i]
            changed = True
            break

    return circuit.with_gates(result)


def remove_trivial_gates(circuit: ReversibleCircuit) -> ReversibleCircuit:
    """Drop gates that provably do nothing and normalise the rest.

    Two shapes of statically trivial gates exist in the gate library:

    * a gate whose control list contains the same line with *both*
      polarities is unsatisfiable — it never triggers and is removed,
    * duplicate control entries of the same polarity are redundant — the
      gate is replaced by its :meth:`~ToffoliGate.normalized` form, which
      also restores the honest ``num_controls`` count the T-count models
      charge for.

    Both shapes require a duplicated control line, which a canonical gate
    store rules out by construction — in that case the input circuit is
    returned unchanged without touching a single gate object.
    """
    store = circuit.gate_store()
    if store.is_canonical():
        return circuit
    return remove_trivial_gates_reference(circuit)


def remove_trivial_gates_reference(
    circuit: ReversibleCircuit,
) -> ReversibleCircuit:
    """Per-gate-object normalisation — oracle for :func:`remove_trivial_gates`."""
    result: List[ToffoliGate] = []
    for gate in circuit.gates():
        if gate.is_unsatisfiable():
            continue
        if gate.has_duplicate_controls():
            gate = gate.normalized()
        result.append(gate)
    return circuit.with_gates(result)


def optimize_circuit(circuit: ReversibleCircuit, max_rounds: int = 4) -> ReversibleCircuit:
    """Trivial-gate removal, NOT-merging and cancellation to a fixed point."""
    current = remove_trivial_gates(circuit)
    for _ in range(max_rounds):
        merged = merge_not_gates(current)
        cancelled = cancel_adjacent_gates(merged)
        if cancelled.num_gates() == current.num_gates():
            return cancelled
        current = cancelled
    return current
