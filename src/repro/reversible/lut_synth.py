"""Executing a pebble schedule: LUT-granular hierarchical synthesis.

Every :data:`~repro.reversible.pebbling.COMPUTE` step of a
:class:`~repro.reversible.pebbling.PebbleSchedule` synthesises one k-LUT's
truth table onto an ancilla line; an
:data:`~repro.reversible.pebbling.UNCOMPUTE` step re-applies the same block
in reverse (returning the ancilla to zero and releasing the line for
reuse), and a :data:`~repro.reversible.pebbling.COPY` step CNOTs a pebbled
value onto a primary-output line.  Output lines are drawn from the same
free-line pool as the ancillas, so an output claimed after a cone has been
uncomputed reuses a zeroed ancilla instead of a fresh qubit.

Three sub-synthesizers realise a LUT block:

* ``"esop"`` (default) — a PSDKRO ESOP of the LUT function; every cube
  becomes one mixed-polarity Toffoli with controls on the leaf lines and
  the ancilla as target.  The block only ever writes the target line.
* ``"exact"`` — the SAT-exact minimum-cube ESOP of
  :mod:`repro.logic.exact_esop` (memoized by truth table, PSDKRO on
  solver-budget fallback), so a block is never larger than the ``"esop"``
  one and usually saves Toffolis on ≤4-input functions.
* ``"tbs"``  — transformation-based synthesis of the ``(x, a) -> (x, a ⊕
  f(x))`` permutation over the leaf lines plus the target; leaf lines may
  be written transiently but are restored by the end of the block.

Both blocks are rebuilt from the *current* leaf lines at every step: under
a bounded schedule a fanin LUT may have been evicted and recomputed onto a
different line between a compute and its matching uncompute, so recorded
gate lists would silently read stale lines.  Because a block is a pure
function of the LUT truth table and the leaf values, re-deriving it is
always correct.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.aig import lit_is_compl, lit_node
from repro.logic.cuts import LutMapping, lut_map
from repro.logic.esop import psdkro_cubes
from repro.reversible.circuit import LinePool, ReversibleCircuit
from repro.reversible.pebbling import (
    COMPUTE,
    COPY,
    PebbleSchedule,
    make_schedule,
    validate_schedule,
)

__all__ = ["LUT_SYNTHESIZERS", "lut_synthesis", "synthesize_schedule"]

#: The per-LUT sub-synthesizers understood by :func:`synthesize_schedule`.
LUT_SYNTHESIZERS = ("esop", "exact", "tbs")


#: A gate description as accepted by ``ReversibleCircuit.append_controls``:
#: an ordered ``(line, positive)`` control list plus the target line.
_GateDesc = Tuple[Tuple[Tuple[int, bool], ...], int]


def _cubes_to_controls(cubes, leaf_lines: List[int], target: int) -> List[_GateDesc]:
    """One mixed-polarity Toffoli per cube, all targeting the ancilla."""
    gates: List[_GateDesc] = []
    for cube in cubes:
        controls = tuple(
            (leaf_lines[var], positive) for var, positive in cube.literals()
        )
        gates.append((controls, target))
    return gates


def _esop_block(truth: int, leaf_lines: List[int], target: int) -> List[_GateDesc]:
    """One Toffoli per PSDKRO cube, all targeting the ancilla."""
    return _cubes_to_controls(
        psdkro_cubes(truth, len(leaf_lines)), leaf_lines, target
    )


def _exact_block(truth: int, leaf_lines: List[int], target: int) -> List[_GateDesc]:
    """The SAT-exact minimum-cube ESOP of the LUT (memoized by truth table).

    Never larger than the PSDKRO block: :func:`exact_esop_cubes` falls
    back to the heuristic cover on solver-budget exhaustion or for
    functions wider than its exact limit.
    """
    from repro.logic.exact_esop import exact_esop_cubes

    return _cubes_to_controls(
        exact_esop_cubes(truth, len(leaf_lines)), leaf_lines, target
    )


def _tbs_block(truth: int, leaf_lines: List[int], target: int) -> List[_GateDesc]:
    """TBS of the ``(x, a) -> (x, a xor f(x))`` permutation, remapped."""
    from repro.reversible.tbs import synthesize_permutation_masks

    num_vars = len(leaf_lines)
    size = 1 << (num_vars + 1)
    permutation = [0] * size
    for state in range(size):
        x = state & ((1 << num_vars) - 1)
        a = state >> num_vars
        permutation[state] = x | ((a ^ ((truth >> x) & 1)) << num_vars)
    masks = synthesize_permutation_masks(permutation, num_vars + 1)
    line_of = list(leaf_lines) + [target]
    gates: List[_GateDesc] = []
    for controls_mask, local_target in masks:
        controls: List[Tuple[int, bool]] = []
        mask = controls_mask
        while mask:
            bit = mask & -mask
            controls.append((line_of[bit.bit_length() - 1], True))
            mask ^= bit
        gates.append((tuple(controls), line_of[local_target]))
    return gates


_BLOCK_BUILDERS = {"esop": _esop_block, "exact": _exact_block, "tbs": _tbs_block}


def synthesize_schedule(
    schedule: PebbleSchedule,
    name: str = "lut",
    lut_synth: str = "esop",
    validate: bool = True,
) -> ReversibleCircuit:
    """Execute a pebble schedule into a reversible circuit.

    ``lut_synth`` selects the per-LUT sub-synthesizer (one of
    :data:`LUT_SYNTHESIZERS`).  The schedule is validated first (disable
    with ``validate=False`` only for schedules already validated); an
    invalid schedule raises
    :class:`~repro.reversible.pebbling.InvalidScheduleError` before any
    gate is emitted.
    """
    if lut_synth not in _BLOCK_BUILDERS:
        raise ValueError(
            f"unknown LUT synthesizer {lut_synth!r}; expected one of "
            f"{', '.join(LUT_SYNTHESIZERS)}"
        )
    if validate:
        validate_schedule(schedule)
    build_block = _BLOCK_BUILDERS[lut_synth]
    mapping = schedule.mapping
    aig = mapping.aig

    circuit = ReversibleCircuit(name)
    pool = LinePool(circuit)
    node_line: Dict[int, int] = {}
    for i, (pi, pi_name) in enumerate(zip(aig.pis(), aig.pi_names())):
        node_line[lit_node(pi)] = circuit.add_input_line(i, name=pi_name)

    for step in schedule.steps:
        if step.op == COMPUTE:
            leaves, truth = mapping.luts[step.node]
            target = pool.acquire()
            leaf_lines = [node_line[leaf] for leaf in leaves]
            circuit.extend_controls(build_block(truth, leaf_lines, target))
            node_line[step.node] = target
        elif step.op == COPY:
            target = pool.acquire(name=aig.po_names()[step.output])
            circuit.set_output(target, step.output)
            po = aig.pos()[step.output]
            driver = lit_node(po)
            if not aig.is_const(driver):
                circuit.append_controls(((node_line[driver], True),), target)
            if lit_is_compl(po):
                circuit.append_controls((), target)
        else:  # UNCOMPUTE
            leaves, truth = mapping.luts[step.node]
            target = node_line.pop(step.node)
            leaf_lines = [node_line[leaf] for leaf in leaves]
            circuit.extend_controls(
                reversed(build_block(truth, leaf_lines, target))
            )
            pool.release(target)
    return circuit


def lut_synthesis(
    aig,
    k: int = 4,
    strategy: str = "bennett",
    max_pebbles=None,
    max_cuts: int = 8,
    cut_selection: str = "area",
    lut_synth: str = "esop",
    name: str = "lut",
) -> ReversibleCircuit:
    """LUT-map an AIG, schedule the pebble game and execute the schedule.

    The one-call convenience wrapper around :func:`~repro.logic.cuts.lut_map`,
    :func:`~repro.reversible.pebbling.make_schedule` and
    :func:`synthesize_schedule`; the ``lut`` flow of
    :mod:`repro.core.flows` exposes the same pipeline stage by stage, with
    the same defaults (``cut_selection="area"``), so one call reproduces
    one flow run of the same AIG and parameters.
    """
    mapping = lut_map(aig, k=k, max_cuts=max_cuts, selection=cut_selection)
    schedule = make_schedule(mapping, strategy=strategy, max_pebbles=max_pebbles)
    return synthesize_schedule(
        schedule, name=name, lut_synth=lut_synth, validate=False
    )
