"""Exact reversible pebbling via SAT (the ``"exact"`` strategy).

The greedy ``bounded`` scheduler trades qubits for T-count heuristically;
this module replaces the heuristic with a step-indexed SAT encoding solved
by :mod:`repro.sat`, in two regimes:

**Monolithic (small LUT DAGs).**  The whole game is encoded over ``T``
single-move steps: state variables ``p[t][i]`` ("LUT ``i`` is pebbled
after step ``t``"), move variables ``m[t][i]`` tied to the state by an XOR
link, exactly one move per step, fanin-pebbled preconditions on every
move, a per-step cardinality bound of ``max_pebbles`` (Sinz counter), and
all-zero boundary states with every output driver pebbled at some step.
Iterative deepening on ``T`` — starting from the parity-correct lower
bound of twice the output-cone size — yields a schedule with a *provably
minimal* number of moves.  Two descent passes then shrink, at that move
count, first the estimated gate count (a cardinality constraint over
cost-weighted move literals) and then the pebble peak.

**Windowed (large LUT DAGs).**  A monolithic encoding of a thousand-step
game is hopeless in pure Python, but the greedy schedule's waste is local:
between two COPY barriers the greedy run recomputes and evicts in patterns
an exact solver can compress.  The engine replays the greedy ``bounded``
seed, slices every COPY-free run into windows of bounded size, and
re-solves each window exactly — boundary pebble states fixed to the
replay, pebbles not touched by the window frozen, and the per-step budget
capped at the window's own realised peak, so the peak can only stay or
drop while the move count strictly drops.  An improved window is accepted
only when its cost-weighted move estimate is strictly cheaper, so the
resulting schedule *strictly dominates* the greedy seed whenever any
window improves.

Both regimes respect a per-call wall-clock ``time_budget``; on exhaustion
the engine degrades to the greedy seed (never fails a flow late), and the
schedule's ``info`` records which regime ran, whether step-optimality was
proven, and how much of the seed was improved.  Every result is validated
by :func:`~repro.reversible.pebbling.validate_schedule` before it is
returned.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.logic.aig import lit_node
from repro.logic.cuts import LutMapping
from repro.sat import Cnf, solve
from repro.reversible.pebbling import (
    COMPUTE,
    COPY,
    UNCOMPUTE,
    PebbleSchedule,
    PebbleStep,
    _copy_step,
    _estimated_gates,
    _greedy_steps,
    _pebble_memo,
    bounded_schedule,
    minimum_pebbles,
    validate_schedule,
)

__all__ = [
    "DEFAULT_TIME_BUDGET",
    "MONOLITHIC_LUT_LIMIT",
    "exact_schedule",
]

#: Wall-clock seconds one :func:`exact_schedule` call may spend in SAT.
DEFAULT_TIME_BUDGET = 20.0

#: LUT DAGs up to this size are solved monolithically (provable move
#: optimality); larger DAGs use windowed improvement of the greedy seed.
MONOLITHIC_LUT_LIMIT = 12

#: Windowed regime: bounds on one window's step count and distinct LUTs.
_WINDOW_MAX_STEPS = 24
_WINDOW_MAX_NODES = 10

#: Conflict cap per windowed SAT call, so one stubborn window cannot eat
#: the whole time budget.
_WINDOW_CONFLICT_BUDGET = 4000


class _PebbleSat:
    """One step-indexed encoding instance over a fixed set of active LUTs.

    ``nodes`` are the LUTs allowed to move; everything else is frozen.
    ``start``/``end`` fix the boundary pebble states of the active LUTs,
    ``cap`` bounds how many active LUTs may be pebbled simultaneously, and
    ``required`` lists LUTs that must be pebbled at some intermediate step
    (output drivers, monolithic regime only).
    """

    def __init__(
        self,
        mapping: LutMapping,
        nodes: Sequence[int],
        start: Set[int],
        end: Set[int],
        cap: Optional[int],
        required: Sequence[int] = (),
    ):
        self.mapping = mapping
        self.nodes = list(nodes)
        self.index = {node: i for i, node in enumerate(self.nodes)}
        self.start = start
        self.end = end
        self.cap = cap
        self.required = list(required)
        # Fanins an active LUT reads, split into modelled (active) and
        # assumed-pebbled (frozen) ones.  A fanin that is neither active
        # nor pebbled at the boundary makes its reader immovable.
        self.deps: List[List[int]] = []
        self.movable: List[bool] = []
        frozen_pebbled = start  # frozen LUT state never changes
        for node in self.nodes:
            active_deps = []
            movable = True
            for dep in mapping.dependencies(node):
                if dep in self.index:
                    active_deps.append(self.index[dep])
                elif dep not in frozen_pebbled:
                    movable = False
            self.deps.append(active_deps)
            self.movable.append(movable)

    def build(
        self,
        num_steps: int,
        gate_costs: Optional[Sequence[int]] = None,
        gate_bound: Optional[int] = None,
        cap_override: Optional[int] = None,
    ) -> Tuple[Cnf, List[List[int]]]:
        """The CNF for a ``num_steps``-move game; returns it and the move vars."""
        n = len(self.nodes)
        cnf = Cnf()
        p = [[cnf.new_var() for _ in range(n)] for _ in range(num_steps + 1)]
        m = [[cnf.new_var() for _ in range(n)] for _ in range(num_steps)]

        for i, node in enumerate(self.nodes):
            cnf.add_clause([p[0][i]] if node in self.start else [-p[0][i]])
            cnf.add_clause(
                [p[num_steps][i]] if node in self.end else [-p[num_steps][i]]
            )
            if not self.movable[i]:
                for t in range(num_steps):
                    cnf.add_clause([-m[t][i]])

        for t in range(num_steps):
            cnf.exactly_one(m[t])
            for i in range(n):
                # A move flips the state; no move leaves it unchanged.
                cnf.xor_link(m[t][i], p[t + 1][i], p[t][i])
                # Every fanin must be pebbled while its reader moves.
                for dep in self.deps[i]:
                    cnf.add_clause([-m[t][i], p[t][dep]])
                # Undoing the previous move is never part of a minimal
                # schedule (the pair could be dropped), so prune it.
                if t + 1 < num_steps:
                    cnf.add_clause([-m[t][i], -m[t + 1][i]])

        cap = self.cap if cap_override is None else cap_override
        if cap is not None and cap < n:
            for t in range(1, num_steps):
                cnf.at_most_k(p[t], cap)

        for node in self.required:
            i = self.index[node]
            cnf.add_clause([p[t][i] for t in range(1, num_steps)])

        if gate_bound is not None and gate_costs is not None:
            weighted = []
            for t in range(num_steps):
                for i in range(n):
                    weighted.extend([m[t][i]] * gate_costs[i])
            cnf.at_most_k(weighted, gate_bound)
        return cnf, m

    def solve_moves(self, num_steps: int, deadline: float, **build_options):
        """Solve one horizon; ``(status, moves)`` with moves as LUT ids."""
        conflict_budget = build_options.pop("conflict_budget", None)
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return "unknown", None
        cnf, m = self.build(num_steps, **build_options)
        result = solve(
            cnf, time_budget=remaining, conflict_budget=conflict_budget
        )
        if result.status != "sat":
            return result.status, None
        moves = []
        for t in range(num_steps):
            chosen = [
                self.nodes[i] for i in range(len(self.nodes))
                if result.model[m[t][i]]
            ]
            moves.append(chosen[0])
        return "sat", moves


def _lut_gate_costs(mapping: LutMapping, nodes: Sequence[int]) -> List[int]:
    """ESOP cube counts per LUT — the executor's per-block gate estimate."""
    from repro.logic.esop import psdkro_cubes

    block_gates = _pebble_memo(mapping)["block_gates"]
    costs = []
    for node in nodes:
        if node not in block_gates:
            leaves, truth = mapping.luts[node]
            block_gates[node] = len(psdkro_cubes(truth, len(leaves)))
        costs.append(block_gates[node])
    return costs


def _needed_luts(mapping: LutMapping) -> List[int]:
    """The LUTs in some output cone, in mapping (topological) order."""
    needed: Set[int] = set()
    for po in mapping.aig.pos():
        driver = lit_node(po)
        if driver in mapping.luts:
            needed.update(mapping.lut_cone(driver))
    return [root for root in mapping.order if root in needed]


def _resolve_budget(mapping: LutMapping, max_pebbles) -> int:
    """Fractional budgets resolve exactly as in ``bounded_schedule``."""
    if max_pebbles is None:
        return minimum_pebbles(mapping)
    if isinstance(max_pebbles, float) and 0 < max_pebbles < 1:
        return max(
            minimum_pebbles(mapping),
            int(round(max_pebbles * mapping.num_luts())),
        )
    max_pebbles = int(max_pebbles)
    if max_pebbles < 1:
        raise ValueError("max_pebbles must be at least 1")
    return max_pebbles


def _moves_to_steps(
    mapping: LutMapping, moves: Sequence[int], pebbled: Set[int]
) -> List[PebbleStep]:
    """Turn a move list into COMPUTE/UNCOMPUTE steps from a start state."""
    pebbled = set(pebbled)
    steps = []
    for node in moves:
        if node in pebbled:
            pebbled.discard(node)
            steps.append(PebbleStep(UNCOMPUTE, node))
        else:
            pebbled.add(node)
            steps.append(PebbleStep(COMPUTE, node))
    return steps


def _insert_copies(
    mapping: LutMapping, move_steps: Sequence[PebbleStep]
) -> List[PebbleStep]:
    """Interleave COPY steps at each output driver's first pebbled moment."""
    pos = mapping.aig.pos()
    waiting: Dict[int, List[int]] = {}
    steps: List[PebbleStep] = []
    for j, po in enumerate(pos):
        driver = lit_node(po)
        if driver in mapping.luts:
            waiting.setdefault(driver, []).append(j)
        else:
            # PI- or constant-driven outputs need no pebble.
            steps.append(_copy_step(mapping, j))
    for step in move_steps:
        steps.append(step)
        if step.op == COMPUTE and step.node in waiting:
            for j in waiting.pop(step.node):
                steps.append(_copy_step(mapping, j))
    return steps


def _finish(
    mapping: LutMapping,
    steps: List[PebbleStep],
    budget: int,
    info: Dict,
) -> PebbleSchedule:
    schedule = PebbleSchedule(
        mapping, steps, strategy="exact", max_pebbles=budget, info=info
    )
    schedule._stats = validate_schedule(schedule)
    return schedule


# -- monolithic regime --------------------------------------------------------


def _monolithic_schedule(
    mapping: LutMapping, budget: int, deadline: float
) -> PebbleSchedule:
    needed = _needed_luts(mapping)
    if not needed:
        steps = [_copy_step(mapping, j) for j in range(mapping.aig.num_pos())]
        return _finish(
            mapping, steps, budget, {"engine": "trivial", "optimal": True}
        )

    # The greedy seed — the same anchored run the ``bounded`` strategy
    # would return at this budget — is fallback, deepening ceiling and
    # peak cap in one: every SAT solution is constrained to the seed's
    # own peak, so the exact schedule never holds more pebbles than the
    # greedy one it replaces.
    try:
        seed: Optional[List[PebbleStep]] = list(
            bounded_schedule(mapping, budget).steps
        )
    except ValueError:
        seed = _greedy_steps(mapping, budget)
    seed_moves = (
        None
        if seed is None
        else [s for s in seed if s.op != COPY]
    )
    if seed is not None:
        seed_peak = PebbleSchedule(mapping, list(seed)).pebble_peak()
        cap = min(budget, seed_peak)
        ceiling = len(seed_moves)
    else:
        cap = budget
        ceiling = 4 * len(needed) + 4

    drivers = sorted(
        {
            lit_node(po)
            for po in mapping.aig.pos()
            if lit_node(po) in mapping.luts
        }
    )
    encoder = _PebbleSat(
        mapping, needed, start=set(), end=set(), cap=cap, required=drivers
    )
    costs = _lut_gate_costs(mapping, needed)

    lower = 2 * len(needed)
    moves: Optional[List[int]] = None
    proven = False
    for horizon in range(lower, ceiling, 2):
        status, found = encoder.solve_moves(horizon, deadline)
        if status == "sat":
            moves, proven = found, True
            break
        if status == "unknown":
            break
    else:
        # Every horizon below the seed is UNSAT: the seed is optimal.
        proven = seed is not None

    fallback = False
    if moves is None:
        if seed is None:
            if proven:
                raise ValueError(
                    f"max_pebbles={budget} admits no pebbling of this LUT "
                    f"DAG within {ceiling} moves"
                )
            raise ValueError(
                "exact pebbling time budget exhausted and no greedy seed "
                f"exists at max_pebbles={budget}"
            )
        # The seed's move count is minimal (proven) or the best known
        # (budget ran dry); its greedy move *choices* may still be neither
        # gate- nor peak-minimal, so the descent passes below apply to it
        # exactly as to a solver-found move list.
        moves = [s.node for s in seed_moves]
        fallback = True

    # Gate descent: same move count, cheaper cost-weighted moves.
    cost_of = lambda ms: sum(  # noqa: E731
        costs[needed.index(node)] for node in ms
    )
    best_cost = cost_of(moves)
    while best_cost > 0 and time.monotonic() < deadline:
        status, found = encoder.solve_moves(
            len(moves), deadline, gate_costs=costs, gate_bound=best_cost - 1
        )
        if status != "sat":
            break
        moves, best_cost = found, cost_of(found)

    # Peak descent: same move count and gate bound, fewer pebbles.
    pebbled: Set[int] = set()
    peak = 0
    for node in moves:
        pebbled.symmetric_difference_update((node,))
        peak = max(peak, len(pebbled))
    while peak > 1 and time.monotonic() < deadline:
        status, found = encoder.solve_moves(
            len(moves),
            deadline,
            gate_costs=costs,
            gate_bound=best_cost,
            cap_override=peak - 1,
        )
        if status != "sat":
            break
        moves, peak = found, peak - 1

    steps = _insert_copies(mapping, _moves_to_steps(mapping, moves, set()))
    info = {"engine": "sat-monolithic", "optimal": proven, "moves": len(moves)}
    if fallback:
        info["fallback"] = True
    return _finish(mapping, steps, budget, info)


# -- windowed regime ----------------------------------------------------------


def _window_chunks(steps, begin, end):
    """Split one COPY-free run into encodable (start, stop) chunks."""
    chunks = []
    i = begin
    while i < end:
        j = i
        nodes: Set[int] = set()
        while j < end and j - i < _WINDOW_MAX_STEPS:
            nodes.add(steps[j].node)
            if len(nodes) > _WINDOW_MAX_NODES:
                break
            j += 1
        if j == i:  # single step touching too many nodes cannot happen
            j = i + 1
        chunks.append((i, j))
        i = j
    return chunks


def _improve_window(
    mapping: LutMapping,
    steps: List[PebbleStep],
    begin: int,
    end: int,
    pebbled_before: List[Set[int]],
    deadline: float,
) -> Optional[List[PebbleStep]]:
    """Re-solve one window exactly; improved step list or ``None``."""
    window = steps[begin:end]
    active = sorted({s.node for s in window})
    start_all = pebbled_before[begin]
    end_all = pebbled_before[end]
    start = {n for n in active if n in start_all}
    finish = {n for n in active if n in end_all}
    frozen = len(start_all - set(active))
    peak = max(len(pebbled_before[t + 1]) for t in range(begin, end))
    cap = peak - frozen
    changed = sum(1 for n in active if (n in start) != (n in finish))
    lower = max(changed, 0)
    if len(window) - lower < 2:
        return None  # nothing to gain

    costs = _lut_gate_costs(mapping, active)
    cost_index = {node: costs[i] for i, node in enumerate(active)}
    old_cost = sum(cost_index[s.node] for s in window)
    encoder = _PebbleSat(mapping, active, start, finish, cap)
    for horizon in range(lower, len(window) - 1, 2):
        status, moves = encoder.solve_moves(
            horizon, deadline, conflict_budget=_WINDOW_CONFLICT_BUDGET
        )
        if status == "unknown":
            return None
        if status == "sat":
            new_cost = sum(cost_index[node] for node in moves)
            if new_cost >= old_cost:
                return None
            return _moves_to_steps(mapping, moves, start)
    return None


def _replay_states(
    mapping: LutMapping, steps: Sequence[PebbleStep]
) -> List[Set[int]]:
    """Pebbled-LUT set before each step index (and after the last)."""
    states = [set()]
    pebbled: Set[int] = set()
    for step in steps:
        if step.op == COMPUTE:
            pebbled.add(step.node)
        elif step.op == UNCOMPUTE:
            pebbled.discard(step.node)
        states.append(set(pebbled))
    return states


def _windowed_schedule(
    mapping: LutMapping, budget: int, deadline: float
) -> PebbleSchedule:
    seed = bounded_schedule(mapping, budget)
    steps = list(seed.steps)
    states = _replay_states(mapping, steps)

    new_steps: List[PebbleStep] = []
    improved = 0
    examined = 0
    i = 0
    while i < len(steps):
        if steps[i].op == COPY:
            new_steps.append(steps[i])
            i += 1
            continue
        j = i
        while j < len(steps) and steps[j].op != COPY:
            j += 1
        for begin, stop in _window_chunks(steps, i, j):
            examined += 1
            replacement = None
            if time.monotonic() < deadline:
                replacement = _improve_window(
                    mapping, steps, begin, stop, states, deadline
                )
            if replacement is not None:
                improved += 1
                new_steps.extend(replacement)
            else:
                new_steps.extend(steps[begin:stop])
        i = j

    info = {
        "engine": "sat-windowed",
        "optimal": False,
        "windows": examined,
        "windows_improved": improved,
        "seed_steps": len(steps),
        "seed_gates": _estimated_gates(mapping, steps),
    }
    return _finish(mapping, new_steps, budget, info)


# -- entry point --------------------------------------------------------------


def exact_schedule(
    mapping: LutMapping,
    max_pebbles=None,
    time_budget: float = DEFAULT_TIME_BUDGET,
) -> PebbleSchedule:
    """A SAT-optimised pebbling schedule within ``max_pebbles`` pebbles.

    ``max_pebbles`` follows the ``bounded`` conventions: an absolute
    count, a float in ``(0, 1)`` as a fraction of the LUT count, or
    ``None`` for the scheduler's minimum feasible budget.  DAGs of at most
    :data:`MONOLITHIC_LUT_LIMIT` LUTs are solved monolithically (move
    count provably minimal, then gate- and peak-descent); larger DAGs get
    exact window-by-window improvement of the greedy ``bounded`` seed.
    ``time_budget`` caps the total SAT effort in seconds; whatever is
    proven by then is returned, degraded gracefully towards the seed.
    """
    budget = _resolve_budget(mapping, max_pebbles)
    deadline = time.monotonic() + time_budget
    if mapping.num_luts() <= MONOLITHIC_LUT_LIMIT:
        return _monolithic_schedule(mapping, budget, deadline)
    return _windowed_schedule(mapping, budget, deadline)


def _build_exact(mapping, max_pebbles=None, **options):
    return exact_schedule(mapping, max_pebbles=max_pebbles, **options)


def _register() -> None:
    from repro.reversible.strategies import (
        PebblingStrategy,
        register_strategy,
    )

    register_strategy(
        PebblingStrategy(
            "exact",
            _build_exact,
            "SAT-exact pebbling: provably move-minimal on small DAGs, "
            "exact windowed improvement of the greedy seed on large ones "
            "(options: time_budget seconds)",
        )
    )


_register()
