"""Reversible circuits: cascades of Toffoli gates over a fixed set of lines.

A :class:`ReversibleCircuit` owns its lines (qubits) and a gate cascade.
Every line carries a :class:`LineInfo` describing its role at the circuit
boundary:

* an *input* line receives bit ``input_index`` of the primary input,
* a *constant* line is initialised to a fixed value (an ancilla),
* an *output* line carries bit ``output_index`` of the function result after
  the cascade,
* a *garbage* line carries a value that is discarded.

A line may simultaneously be an input and an output (in-place computation,
as produced by the functional synthesis flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.reversible.gates import ToffoliGate
from repro.reversible.gatestore import GateStore, bit_count

__all__ = ["LineInfo", "LinePool", "ReversibleCircuit"]


def _gate_is_canonical(gate: ToffoliGate) -> bool:
    """True if the gate's control lines are strictly ascending (no dups)."""
    controls = gate.controls
    return all(a[0] < b[0] for a, b in zip(controls, controls[1:]))


@dataclass(frozen=True)
class LineInfo:
    """Boundary role of one circuit line."""

    name: str
    input_index: Optional[int] = None
    constant: Optional[int] = None
    output_index: Optional[int] = None
    garbage: bool = False

    def is_input(self) -> bool:
        """True if the line receives a primary input bit."""
        return self.input_index is not None

    def is_constant(self) -> bool:
        """True if the line is an ancilla with a fixed initial value."""
        return self.constant is not None

    def is_output(self) -> bool:
        """True if the line carries a primary output bit."""
        return self.output_index is not None


class ReversibleCircuit:
    """A cascade of mixed-polarity multiple-controlled Toffoli gates.

    Gates are held in a packed columnar :class:`~repro.reversible.gatestore.
    GateStore` (target / care-mask / polarity-mask columns);
    :class:`~repro.reversible.gates.ToffoliGate` objects are materialised
    lazily, so the object API (:meth:`gates`, pickling, equality) is
    preserved while the cost kernels and synthesis emitters operate on the
    masks directly (:meth:`append_masks` / :meth:`extend_masks` /
    :meth:`gate_store`).
    """

    #: Target tag of the :mod:`repro.opt` pass manager (cf.
    #: :func:`repro.opt.targets.target_kind`).
    network_type = "rev"

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._lines: List[LineInfo] = []
        self._store = GateStore()

    def __setstate__(self, state) -> None:
        # Back-compat with pickles from the object-list representation.
        gates = state.pop("_gates", None)
        self.__dict__.update(state)
        if "_store" not in state:
            self._store = GateStore()
            if gates:
                self.extend(gates)

    # -- lines ----------------------------------------------------------------

    def add_line(
        self,
        name: Optional[str] = None,
        input_index: Optional[int] = None,
        constant: Optional[int] = None,
        output_index: Optional[int] = None,
        garbage: bool = False,
    ) -> int:
        """Add a line and return its index."""
        if input_index is not None and constant is not None:
            raise ValueError("a line cannot be both an input and a constant")
        if constant is not None and constant not in (0, 1):
            raise ValueError("constant initial values must be 0 or 1")
        index = len(self._lines)
        if name is None:
            name = f"line{index}"
        self._lines.append(
            LineInfo(name, input_index, constant, output_index, garbage)
        )
        return index

    def add_input_line(self, input_index: int, name: Optional[str] = None) -> int:
        """Add a primary-input line."""
        return self.add_line(name or f"x{input_index}", input_index=input_index)

    def add_constant_line(self, value: int = 0, name: Optional[str] = None) -> int:
        """Add an ancilla line initialised to ``value``."""
        return self.add_line(name, constant=value)

    def set_output(self, line: int, output_index: int) -> None:
        """Mark ``line`` as carrying primary output ``output_index``."""
        self._check_line(line)
        self._lines[line] = replace(
            self._lines[line], output_index=output_index, garbage=False
        )

    def set_line_name(self, line: int, name: str) -> None:
        """Rename a line (e.g. a reused ancilla promoted to an output)."""
        self._check_line(line)
        self._lines[line] = replace(self._lines[line], name=name)

    def set_garbage(self, line: int) -> None:
        """Mark ``line`` as garbage."""
        self._check_line(line)
        self._lines[line] = replace(self._lines[line], garbage=True, output_index=None)

    def line_info(self, line: int) -> LineInfo:
        """Boundary role of a line."""
        self._check_line(line)
        return self._lines[line]

    def lines(self) -> List[LineInfo]:
        """All line descriptors in index order."""
        return list(self._lines)

    def num_lines(self) -> int:
        """Number of circuit lines (qubits)."""
        return len(self._lines)

    def num_qubits(self) -> int:
        """Alias of :meth:`num_lines` (the paper's cost metric name)."""
        return len(self._lines)

    def input_lines(self) -> Dict[int, int]:
        """Map primary-input bit index to line index."""
        return {
            info.input_index: line
            for line, info in enumerate(self._lines)
            if info.input_index is not None
        }

    def output_lines(self) -> Dict[int, int]:
        """Map primary-output bit index to line index."""
        return {
            info.output_index: line
            for line, info in enumerate(self._lines)
            if info.output_index is not None
        }

    def constant_lines(self) -> Dict[int, int]:
        """Map line index to initial constant value for all ancilla lines."""
        return {
            line: info.constant
            for line, info in enumerate(self._lines)
            if info.constant is not None
        }

    def num_inputs(self) -> int:
        """Number of primary-input bits."""
        return len(self.input_lines())

    def num_outputs(self) -> int:
        """Number of primary-output bits."""
        return len(self.output_lines())

    def _check_line(self, line: int) -> None:
        if not 0 <= line < len(self._lines):
            raise ValueError(f"line {line} does not exist")

    # -- gates ----------------------------------------------------------------

    def _gate_entry(self, gate: ToffoliGate) -> Tuple[int, int, int, bool]:
        """Validated ``(care, polarity, raw_controls, canonical)`` of a gate."""
        care, polarity = gate.control_masks()
        max_line = care.bit_length() - 1
        if gate.target > max_line:
            max_line = gate.target
        if max_line >= len(self._lines):
            raise ValueError(
                f"gate {gate} uses line {max_line} but the circuit has "
                f"only {len(self._lines)} lines"
            )
        return care, polarity, gate.num_controls(), _gate_is_canonical(gate)

    def append(self, gate: ToffoliGate) -> None:
        """Append a gate to the cascade."""
        care, polarity, raw, canonical = self._gate_entry(gate)
        self._store.append(gate.target, care, polarity, raw, gate, canonical)

    def extend(self, gates: Iterable[ToffoliGate]) -> None:
        """Append several gates."""
        for gate in gates:
            self.append(gate)

    def prepend(self, gate: ToffoliGate) -> None:
        """Insert a gate at the beginning of the cascade (amortised O(1))."""
        care, polarity, raw, canonical = self._gate_entry(gate)
        self._store.prepend(gate.target, care, polarity, raw, gate, canonical)

    def append_masks(self, care: int, polarity: int, target: int) -> None:
        """Append a gate mask-natively (no :class:`ToffoliGate` object).

        ``care`` / ``polarity`` follow the
        :meth:`~repro.reversible.gates.ToffoliGate.control_masks` encoding
        restricted to satisfiable, duplicate-free gates: the gate triggers
        on state ``s`` iff ``s & care == polarity``.  The object, when
        later requested, materialises with controls in ascending line
        order.
        """
        num_lines = len(self._lines)
        if target < 0 or target >= num_lines or care >> num_lines:
            raise ValueError(
                f"gate masks (care={care:#x}, target={target}) exceed the "
                f"circuit's {num_lines} lines"
            )
        if (care >> target) & 1:
            raise ValueError("the target line may not also be a control line")
        if polarity & ~care:
            raise ValueError("polarity mask has bits outside the care mask")
        self._store.append(target, care, polarity, bit_count(care), None)

    def extend_masks(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        """Bulk mask-native append of ``(care, polarity, target)`` triples."""
        num_lines = len(self._lines)
        checked = []
        for care, polarity, target in triples:
            if (
                target < 0
                or target >= num_lines
                or care >> num_lines
                or (care >> target) & 1
                or polarity & ~care
            ):
                raise ValueError(
                    f"gate masks (care={care:#x}, polarity={polarity:#x}, "
                    f"target={target}) are invalid for a circuit with "
                    f"{num_lines} lines"
                )
            checked.append((care, polarity, target))
        self._store.extend_masks(checked)

    def append_controls(
        self, controls: Sequence[Tuple[int, bool]], target: int
    ) -> None:
        """Append a gate from a control list, mask-natively when possible.

        Controls in strictly ascending line order (the shape every
        synthesis emitter produces) take the packed path and skip
        :class:`ToffoliGate` construction; any other shape falls back to
        the object path so the materialised cascade is identical to what
        ``append(ToffoliGate(tuple(controls), target))`` would have built.
        """
        care = 0
        polarity = 0
        previous = -1
        ascending = True
        for line, positive in controls:
            if line <= previous or line < 0:
                ascending = False
                break
            previous = line
            bit = 1 << line
            care |= bit
            if positive:
                polarity |= bit
        if ascending:
            self.append_masks(care, polarity, target)
        else:
            self.append(ToffoliGate(tuple(controls), target))

    def extend_controls(
        self, gates: Iterable[Tuple[Sequence[Tuple[int, bool]], int]]
    ) -> None:
        """Append several ``(controls, target)`` gate descriptions."""
        for controls, target in gates:
            self.append_controls(controls, target)

    def gates(self) -> List[ToffoliGate]:
        """The gate cascade in application order (a fresh list)."""
        return list(self._store.iter_objects())

    def iter_gates(self) -> Iterator[ToffoliGate]:
        """Iterate the cascade lazily, without copying the gate list.

        Mask-appended gates are materialised (and cached) on demand, so
        consuming a prefix only pays for that prefix.  Mutating the
        circuit while iterating is undefined.
        """
        return self._store.iter_objects()

    def gate_store(self) -> GateStore:
        """The packed columnar gate store (the mask-native kernel surface)."""
        return self._store

    def num_gates(self) -> int:
        """Number of Toffoli gates in the cascade."""
        return len(self._store)

    def gate_histogram(self) -> Dict[int, int]:
        """Histogram mapping (raw) control count to number of gates."""
        histogram: Dict[int, int] = {}
        for count in self._store.columns()[3]:
            histogram[count] = histogram.get(count, 0) + 1
        return histogram

    def max_controls(self) -> int:
        """Largest control count of any gate."""
        raw = self._store.columns()[3]
        return max(raw) if raw else 0

    def t_count(self, model: str = "rtof") -> int:
        """T-count of the cascade under a named cost model.

        Delegates to :func:`repro.quantum.tcount.circuit_t_count`; see that
        module for the available models.
        """
        from repro.quantum.tcount import circuit_t_count

        return circuit_t_count(self, model=model)

    def _with_store(
        self, store: GateStore, name: Optional[str] = None
    ) -> "ReversibleCircuit":
        """A circuit with this circuit's lines but a different gate store."""
        result = ReversibleCircuit(name or self.name)
        result._lines = list(self._lines)
        result._store = store
        return result

    def inverse(self) -> "ReversibleCircuit":
        """The inverse circuit (reversed cascade; Toffoli gates are involutions)."""
        return self._with_store(self._store.reversed_copy(), f"{self.name}_inv")

    def copy(self) -> "ReversibleCircuit":
        """An independent copy of the circuit."""
        return self._with_store(self._store.copy())

    def with_gates(self, gates: Iterable[ToffoliGate]) -> "ReversibleCircuit":
        """A copy with the same lines/roles but a different gate cascade."""
        result = ReversibleCircuit(self.name)
        result._lines = list(self._lines)
        result.extend(gates)
        return result

    # -- semantics ---------------------------------------------------------------

    def apply_to_state(self, state: int) -> int:
        """Apply the cascade to a basis state (integer over all lines)."""
        targets, cares, polarities, _ = self._store.columns()
        for care, polarity, target in zip(cares, polarities, targets):
            if state & care == polarity:
                state ^= 1 << target
        return state

    def initial_state(self, input_word: int) -> int:
        """Build the initial line state for a primary-input word.

        Input lines receive their input bit, constant lines their constant
        and every other line starts at 0.
        """
        state = 0
        for line, info in enumerate(self._lines):
            if info.input_index is not None:
                bit = (input_word >> info.input_index) & 1
            elif info.constant is not None:
                bit = info.constant
            else:
                bit = 0
            state |= bit << line
        return state

    def evaluate(self, input_word: int) -> int:
        """Run the circuit on a primary-input word and return the output word."""
        state = self.apply_to_state(self.initial_state(input_word))
        word = 0
        for line, info in enumerate(self._lines):
            if info.output_index is not None and (state >> line) & 1:
                word |= 1 << info.output_index
        return word

    def final_state(self, input_word: int) -> int:
        """Full final line state for a primary-input word."""
        return self.apply_to_state(self.initial_state(input_word))

    def to_permutation(self) -> np.ndarray:
        """The permutation realised over all ``2**num_lines`` basis states.

        Only sensible for circuits with a modest number of lines; larger
        circuits should be checked with :mod:`repro.reversible.verification`
        instead.
        """
        size = 1 << len(self._lines)
        states = np.arange(size, dtype=np.int64)
        targets, cares, polarities, _ = self._store.columns()
        for care, polarity, target in zip(cares, polarities, targets):
            mask = (states & care) == polarity
            states[mask] ^= 1 << target
        return states

    def __repr__(self) -> str:
        return (
            f"ReversibleCircuit(name={self.name!r}, lines={self.num_lines()}, "
            f"gates={self.num_gates()})"
        )


@dataclass
class LinePool:
    """Allocator for zero-initialised ancilla lines with optional reuse.

    The shared invariant of every synthesis back-end that recycles lines:
    only a line whose value has returned to zero may be ``release``d, so a
    subsequent ``acquire`` can hand it out as a fresh ancilla (or as a
    primary-output target).  With ``reuse`` disabled the pool degenerates
    to plain allocation, which keeps line ordering stable for strategies
    that never free anything.
    """

    circuit: ReversibleCircuit
    reuse: bool = True
    free_lines: List[int] = field(default_factory=list)

    def acquire(self, name: Optional[str] = None) -> int:
        """A zeroed line: a reused freed line if available, else a new one."""
        if self.reuse and self.free_lines:
            line = self.free_lines.pop()
            if name is not None:
                self.circuit.set_line_name(line, name)
            return line
        return self.circuit.add_constant_line(
            0, name=name or f"anc{self.circuit.num_lines()}"
        )

    def release(self, line: int) -> None:
        """Return a line (which must hold zero again) to the pool."""
        if self.reuse:
            self.free_lines.append(line)
