"""Reversible circuits: cascades of Toffoli gates over a fixed set of lines.

A :class:`ReversibleCircuit` owns its lines (qubits) and a gate cascade.
Every line carries a :class:`LineInfo` describing its role at the circuit
boundary:

* an *input* line receives bit ``input_index`` of the primary input,
* a *constant* line is initialised to a fixed value (an ancilla),
* an *output* line carries bit ``output_index`` of the function result after
  the cascade,
* a *garbage* line carries a value that is discarded.

A line may simultaneously be an input and an output (in-place computation,
as produced by the functional synthesis flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.reversible.gates import ToffoliGate

__all__ = ["LineInfo", "LinePool", "ReversibleCircuit"]


@dataclass(frozen=True)
class LineInfo:
    """Boundary role of one circuit line."""

    name: str
    input_index: Optional[int] = None
    constant: Optional[int] = None
    output_index: Optional[int] = None
    garbage: bool = False

    def is_input(self) -> bool:
        """True if the line receives a primary input bit."""
        return self.input_index is not None

    def is_constant(self) -> bool:
        """True if the line is an ancilla with a fixed initial value."""
        return self.constant is not None

    def is_output(self) -> bool:
        """True if the line carries a primary output bit."""
        return self.output_index is not None


class ReversibleCircuit:
    """A cascade of mixed-polarity multiple-controlled Toffoli gates."""

    #: Target tag of the :mod:`repro.opt` pass manager (cf.
    #: :func:`repro.opt.targets.target_kind`).
    network_type = "rev"

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._lines: List[LineInfo] = []
        self._gates: List[ToffoliGate] = []

    # -- lines ----------------------------------------------------------------

    def add_line(
        self,
        name: Optional[str] = None,
        input_index: Optional[int] = None,
        constant: Optional[int] = None,
        output_index: Optional[int] = None,
        garbage: bool = False,
    ) -> int:
        """Add a line and return its index."""
        if input_index is not None and constant is not None:
            raise ValueError("a line cannot be both an input and a constant")
        if constant is not None and constant not in (0, 1):
            raise ValueError("constant initial values must be 0 or 1")
        index = len(self._lines)
        if name is None:
            name = f"line{index}"
        self._lines.append(
            LineInfo(name, input_index, constant, output_index, garbage)
        )
        return index

    def add_input_line(self, input_index: int, name: Optional[str] = None) -> int:
        """Add a primary-input line."""
        return self.add_line(name or f"x{input_index}", input_index=input_index)

    def add_constant_line(self, value: int = 0, name: Optional[str] = None) -> int:
        """Add an ancilla line initialised to ``value``."""
        return self.add_line(name, constant=value)

    def set_output(self, line: int, output_index: int) -> None:
        """Mark ``line`` as carrying primary output ``output_index``."""
        self._check_line(line)
        self._lines[line] = replace(
            self._lines[line], output_index=output_index, garbage=False
        )

    def set_line_name(self, line: int, name: str) -> None:
        """Rename a line (e.g. a reused ancilla promoted to an output)."""
        self._check_line(line)
        self._lines[line] = replace(self._lines[line], name=name)

    def set_garbage(self, line: int) -> None:
        """Mark ``line`` as garbage."""
        self._check_line(line)
        self._lines[line] = replace(self._lines[line], garbage=True, output_index=None)

    def line_info(self, line: int) -> LineInfo:
        """Boundary role of a line."""
        self._check_line(line)
        return self._lines[line]

    def lines(self) -> List[LineInfo]:
        """All line descriptors in index order."""
        return list(self._lines)

    def num_lines(self) -> int:
        """Number of circuit lines (qubits)."""
        return len(self._lines)

    def num_qubits(self) -> int:
        """Alias of :meth:`num_lines` (the paper's cost metric name)."""
        return len(self._lines)

    def input_lines(self) -> Dict[int, int]:
        """Map primary-input bit index to line index."""
        return {
            info.input_index: line
            for line, info in enumerate(self._lines)
            if info.input_index is not None
        }

    def output_lines(self) -> Dict[int, int]:
        """Map primary-output bit index to line index."""
        return {
            info.output_index: line
            for line, info in enumerate(self._lines)
            if info.output_index is not None
        }

    def constant_lines(self) -> Dict[int, int]:
        """Map line index to initial constant value for all ancilla lines."""
        return {
            line: info.constant
            for line, info in enumerate(self._lines)
            if info.constant is not None
        }

    def num_inputs(self) -> int:
        """Number of primary-input bits."""
        return len(self.input_lines())

    def num_outputs(self) -> int:
        """Number of primary-output bits."""
        return len(self.output_lines())

    def _check_line(self, line: int) -> None:
        if not 0 <= line < len(self._lines):
            raise ValueError(f"line {line} does not exist")

    # -- gates ----------------------------------------------------------------

    def append(self, gate: ToffoliGate) -> None:
        """Append a gate to the cascade."""
        if gate.max_line() >= len(self._lines):
            raise ValueError(
                f"gate {gate} uses line {gate.max_line()} but the circuit has "
                f"only {len(self._lines)} lines"
            )
        self._gates.append(gate)

    def extend(self, gates: Iterable[ToffoliGate]) -> None:
        """Append several gates."""
        for gate in gates:
            self.append(gate)

    def prepend(self, gate: ToffoliGate) -> None:
        """Insert a gate at the beginning of the cascade."""
        if gate.max_line() >= len(self._lines):
            raise ValueError(
                f"gate {gate} uses line {gate.max_line()} but the circuit has "
                f"only {len(self._lines)} lines"
            )
        self._gates.insert(0, gate)

    def gates(self) -> List[ToffoliGate]:
        """The gate cascade in application order."""
        return list(self._gates)

    def num_gates(self) -> int:
        """Number of Toffoli gates in the cascade."""
        return len(self._gates)

    def gate_histogram(self) -> Dict[int, int]:
        """Histogram mapping control count to number of gates."""
        histogram: Dict[int, int] = {}
        for gate in self._gates:
            histogram[gate.num_controls()] = histogram.get(gate.num_controls(), 0) + 1
        return histogram

    def max_controls(self) -> int:
        """Largest control count of any gate."""
        if not self._gates:
            return 0
        return max(gate.num_controls() for gate in self._gates)

    def t_count(self, model: str = "rtof") -> int:
        """T-count of the cascade under a named cost model.

        Delegates to :func:`repro.quantum.tcount.circuit_t_count`; see that
        module for the available models.
        """
        from repro.quantum.tcount import circuit_t_count

        return circuit_t_count(self, model=model)

    def inverse(self) -> "ReversibleCircuit":
        """The inverse circuit (reversed cascade; Toffoli gates are involutions)."""
        result = ReversibleCircuit(f"{self.name}_inv")
        result._lines = list(self._lines)
        result._gates = list(reversed(self._gates))
        return result

    def copy(self) -> "ReversibleCircuit":
        """An independent copy of the circuit."""
        result = ReversibleCircuit(self.name)
        result._lines = list(self._lines)
        result._gates = list(self._gates)
        return result

    def with_gates(self, gates: Iterable[ToffoliGate]) -> "ReversibleCircuit":
        """A copy with the same lines/roles but a different gate cascade."""
        result = ReversibleCircuit(self.name)
        result._lines = list(self._lines)
        result.extend(gates)
        return result

    # -- semantics ---------------------------------------------------------------

    def apply_to_state(self, state: int) -> int:
        """Apply the cascade to a basis state (integer over all lines)."""
        for gate in self._gates:
            state = gate.apply(state)
        return state

    def initial_state(self, input_word: int) -> int:
        """Build the initial line state for a primary-input word.

        Input lines receive their input bit, constant lines their constant
        and every other line starts at 0.
        """
        state = 0
        for line, info in enumerate(self._lines):
            if info.input_index is not None:
                bit = (input_word >> info.input_index) & 1
            elif info.constant is not None:
                bit = info.constant
            else:
                bit = 0
            state |= bit << line
        return state

    def evaluate(self, input_word: int) -> int:
        """Run the circuit on a primary-input word and return the output word."""
        state = self.apply_to_state(self.initial_state(input_word))
        word = 0
        for line, info in enumerate(self._lines):
            if info.output_index is not None and (state >> line) & 1:
                word |= 1 << info.output_index
        return word

    def final_state(self, input_word: int) -> int:
        """Full final line state for a primary-input word."""
        return self.apply_to_state(self.initial_state(input_word))

    def to_permutation(self) -> np.ndarray:
        """The permutation realised over all ``2**num_lines`` basis states.

        Only sensible for circuits with a modest number of lines; larger
        circuits should be checked with :mod:`repro.reversible.verification`
        instead.
        """
        size = 1 << len(self._lines)
        states = np.arange(size, dtype=np.int64)
        for gate in self._gates:
            care, polarity = gate.control_masks()
            mask = (states & care) == polarity
            states = np.where(mask, states ^ (1 << gate.target), states)
        return states

    def __repr__(self) -> str:
        return (
            f"ReversibleCircuit(name={self.name!r}, lines={self.num_lines()}, "
            f"gates={self.num_gates()})"
        )


@dataclass
class LinePool:
    """Allocator for zero-initialised ancilla lines with optional reuse.

    The shared invariant of every synthesis back-end that recycles lines:
    only a line whose value has returned to zero may be ``release``d, so a
    subsequent ``acquire`` can hand it out as a fresh ancilla (or as a
    primary-output target).  With ``reuse`` disabled the pool degenerates
    to plain allocation, which keeps line ordering stable for strategies
    that never free anything.
    """

    circuit: ReversibleCircuit
    reuse: bool = True
    free_lines: List[int] = field(default_factory=list)

    def acquire(self, name: Optional[str] = None) -> int:
        """A zeroed line: a reused freed line if available, else a new one."""
        if self.reuse and self.free_lines:
            line = self.free_lines.pop()
            if name is not None:
                self.circuit.set_line_name(line, name)
            return line
        return self.circuit.add_constant_line(
            0, name=name or f"anc{self.circuit.num_lines()}"
        )

    def release(self, line: int) -> None:
        """Return a line (which must hold zero again) to the pool."""
        if self.reuse:
            self.free_lines.append(line)
