"""Registry of pebbling strategies, mirroring :mod:`repro.opt.registry`.

Pebbling strategies used to be a hard-coded ``if/elif`` chain inside
:func:`repro.reversible.pebbling.make_schedule`; they are now registered
:class:`PebblingStrategy` entries resolved by name, exactly like
optimisation passes.  The registry is the single namespace the flows, the
CLI ``--strategy`` flag and the exploration engine resolve against;
aliases (``per_output`` for ``eager``) share the namespace, and unknown
names raise :class:`UnknownStrategyError` carrying a did-you-mean
suggestion computed over every known spelling.

The built-in strategies register themselves when their defining modules
load: ``bennett`` / ``eager`` / ``bounded`` from
:mod:`repro.reversible.pebbling` and ``exact`` from
:mod:`repro.reversible.exact_pebbling`.  :func:`get_strategy` imports both
lazily, so looking a name up never depends on import order.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "PebblingStrategy",
    "UnknownStrategyError",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "unregister_strategy",
]


class UnknownStrategyError(ValueError):
    """A ``strategy=`` spec referenced a name the registry does not know."""

    def __init__(self, name: str, suggestion: Optional[str] = None):
        message = f"unknown pebbling strategy {name!r}"
        if suggestion is not None:
            message += f"; did you mean {suggestion!r}?"
        super().__init__(message)
        self.unknown_name = name
        self.suggestion = suggestion


@dataclass(frozen=True)
class PebblingStrategy:
    """One named scheduling strategy.

    ``build`` takes ``(mapping, max_pebbles=None, **options)`` and returns
    a :class:`~repro.reversible.pebbling.PebbleSchedule`; strategy-specific
    options (the exact engine's ``time_budget``) arrive as keyword
    arguments and must be accepted or rejected by the builder itself.
    """

    name: str
    build: Callable = field(compare=False)
    description: str = ""
    aliases: Tuple[str, ...] = ()


#: canonical strategy name -> PebblingStrategy
_STRATEGIES: Dict[str, PebblingStrategy] = {}
#: alias -> canonical strategy name
_ALIASES: Dict[str, str] = {}

_BUILTIN_MODULES = (
    "repro.reversible.pebbling",
    "repro.reversible.exact_pebbling",
)


def _ensure_builtins() -> None:
    """Import the modules whose load registers the built-in strategies."""
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def _known_names() -> List[str]:
    return sorted({*_STRATEGIES, *_ALIASES})


def _suggest(name: str) -> Optional[str]:
    matches = difflib.get_close_matches(name, _known_names(), n=1, cutoff=0.5)
    return matches[0] if matches else None


def register_strategy(
    strategy: PebblingStrategy, replace: bool = False
) -> PebblingStrategy:
    """Register a strategy under its canonical name and all aliases.

    ``replace=False`` (the default) rejects collisions with existing names
    or aliases, so a plugin cannot silently shadow a built-in.  Returns the
    strategy for decorator-style chaining.
    """
    names = (strategy.name, *strategy.aliases)
    if not replace:
        for name in names:
            if name in _STRATEGIES or name in _ALIASES:
                raise ValueError(
                    f"name {name!r} is already registered; pass replace=True "
                    "to override"
                )
    _STRATEGIES[strategy.name] = strategy
    for alias in strategy.aliases:
        _ALIASES[alias] = strategy.name
    return strategy


def unregister_strategy(name: str) -> None:
    """Remove a strategy (by canonical name) and its aliases."""
    strategy = _STRATEGIES.pop(name, None)
    if strategy is None:
        raise UnknownStrategyError(name, _suggest(name))
    for alias in strategy.aliases:
        _ALIASES.pop(alias, None)


def get_strategy(name: str) -> PebblingStrategy:
    """Resolve a canonical name or alias to its strategy.

    Raises :class:`UnknownStrategyError` (a ``ValueError``) with a
    did-you-mean suggestion for unknown names.
    """
    _ensure_builtins()
    if name in _STRATEGIES:
        return _STRATEGIES[name]
    if name in _ALIASES:
        return _STRATEGIES[_ALIASES[name]]
    raise UnknownStrategyError(name, _suggest(name))


def available_strategies() -> List[PebblingStrategy]:
    """Registered strategies sorted by name."""
    _ensure_builtins()
    return sorted(_STRATEGIES.values(), key=lambda s: s.name)
