"""Mixed-polarity multiple-controlled Toffoli (MPMCT) gates.

This is the gate library of the paper (Section II-C): every gate has a set
of positive or negative control lines and a single target line disjoint from
the controls.  NOT (no controls) and CNOT (one control) are special cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

__all__ = ["ToffoliGate"]


@dataclass(frozen=True)
class ToffoliGate:
    """A mixed-polarity multiple-controlled Toffoli gate.

    ``controls`` is a tuple of ``(line, polarity)`` pairs where ``polarity``
    is True for a positive control (triggers on 1) and False for a negative
    control (triggers on 0).  ``target`` is the line whose value is inverted
    when every control is satisfied.

    A line may appear several times in the control list.  Duplicate entries
    of the same polarity are redundant; a line controlled with *both*
    polarities makes the gate statically unsatisfiable (it can never
    trigger).  Both shapes arise from mechanical gate rewriting (control
    merging, polarity pushing) and are what
    :func:`repro.reversible.optimize.remove_trivial_gates` normalises away.
    The target may never also be a control line — that would not describe a
    reversible function.
    """

    controls: Tuple[Tuple[int, bool], ...]
    target: int

    def __post_init__(self) -> None:
        lines = [line for line, _ in self.controls]
        if self.target in lines:
            raise ValueError("the target line may not also be a control line")
        if self.target < 0 or any(line < 0 for line in lines):
            raise ValueError("line indices must be non-negative")

    # -- constructors -------------------------------------------------------

    @classmethod
    def x(cls, target: int) -> "ToffoliGate":
        """A NOT gate."""
        return cls((), target)

    @classmethod
    def cnot(cls, control: int, target: int, polarity: bool = True) -> "ToffoliGate":
        """A (possibly negative-control) CNOT gate."""
        return cls(((control, polarity),), target)

    @classmethod
    def toffoli(cls, control_a: int, control_b: int, target: int) -> "ToffoliGate":
        """A standard positive-control two-control Toffoli gate."""
        return cls(((control_a, True), (control_b, True)), target)

    @classmethod
    def from_lines(
        cls, positive: Iterable[int], negative: Iterable[int], target: int
    ) -> "ToffoliGate":
        """Build a gate from separate positive/negative control line lists."""
        controls = tuple((line, True) for line in positive) + tuple(
            (line, False) for line in negative
        )
        return cls(controls, target)

    # -- queries ------------------------------------------------------------

    def num_controls(self) -> int:
        """Number of control lines."""
        return len(self.controls)

    def is_not(self) -> bool:
        """True for an uncontrolled NOT gate."""
        return not self.controls

    def is_cnot(self) -> bool:
        """True for a singly-controlled gate."""
        return len(self.controls) == 1

    def has_duplicate_controls(self) -> bool:
        """True if some line appears more than once in the control list."""
        lines = [line for line, _ in self.controls]
        return len(set(lines)) != len(lines)

    def is_unsatisfiable(self) -> bool:
        """True if the control list can never be satisfied.

        A line controlled with both polarities requires that line to be 0
        and 1 at once, so the gate is the identity on every state.
        """
        polarities: Dict[int, bool] = {}
        for line, positive in self.controls:
            if polarities.setdefault(line, positive) != positive:
                return True
        return False

    def normalized(self) -> "ToffoliGate":
        """A copy with duplicate control entries removed (first kept).

        Unsatisfiable gates cannot be normalised into an equivalent gate of
        this library (the identity is the *absence* of a gate); callers
        should test :meth:`is_unsatisfiable` first and drop such gates, as
        :func:`repro.reversible.optimize.remove_trivial_gates` does.
        """
        if self.is_unsatisfiable():
            raise ValueError(f"gate {self} is unsatisfiable; drop it instead")
        seen: Dict[int, bool] = {}
        for line, positive in self.controls:
            seen.setdefault(line, positive)
        return ToffoliGate(tuple(seen.items()), self.target)

    def positive_controls(self) -> Tuple[int, ...]:
        """Lines with positive controls."""
        return tuple(line for line, polarity in self.controls if polarity)

    def negative_controls(self) -> Tuple[int, ...]:
        """Lines with negative controls."""
        return tuple(line for line, polarity in self.controls if not polarity)

    def lines(self) -> Tuple[int, ...]:
        """All lines the gate touches (controls then target)."""
        return tuple(line for line, _ in self.controls) + (self.target,)

    def max_line(self) -> int:
        """Highest line index used by the gate."""
        return max(self.lines())

    # -- semantics -----------------------------------------------------------

    def control_masks(self) -> Tuple[int, int]:
        """Bit masks ``(care, polarity)`` over line indices.

        The gate triggers on a state ``s`` iff ``s & care == polarity``.
        For an unsatisfiable gate (a line controlled with both polarities)
        the returned polarity carries the target bit — which is never in
        ``care`` — so the trigger condition is false on every state and all
        mask-based evaluators treat the gate as the identity it is.
        """
        care = 0
        polarity = 0
        for line, positive in self.controls:
            care |= 1 << line
            if positive:
                polarity |= 1 << line
        if self.is_unsatisfiable():
            polarity = (polarity & care) | (1 << self.target)
        return care, polarity

    def applies_to(self, state: int) -> bool:
        """True if the controls are satisfied in ``state`` (a bit vector)."""
        care, polarity = self.control_masks()
        return (state & care) == polarity

    def apply(self, state: int) -> int:
        """Apply the gate to a basis state given as an integer bit vector."""
        if self.applies_to(state):
            return state ^ (1 << self.target)
        return state

    def remapped(self, mapping: Dict[int, int]) -> "ToffoliGate":
        """Return a copy with line indices translated through ``mapping``."""
        controls = tuple((mapping[line], polarity) for line, polarity in self.controls)
        return ToffoliGate(controls, mapping[self.target])

    def __str__(self) -> str:
        parts = []
        for line, polarity in sorted(self.controls):
            parts.append(f"{'' if polarity else '!'}x{line}")
        control_text = ", ".join(parts) if parts else "-"
        return f"T({control_text} -> x{self.target})"
