"""Embedding irreversible functions into reversible ones (Section II-B).

Two embeddings are provided:

* :func:`bennett_embedding` — Theorem 1 of the paper: keep the inputs and
  XOR every output onto its own zero-initialised line (``m + n`` lines),
* :func:`optimum_embedding` — the minimum-line embedding: the number of
  additional lines equals ``ceil(log2(max collision set size))`` (Eq. (3)),
  computed from the explicit function.  Computing this number is
  coNP-complete in general [17]; as in the paper it is only applied to
  functions that have already been collapsed to an explicit representation.

Both return an :class:`EmbeddedFunction`: a reversible specification (as a
permutation over the embedding's lines) together with the line roles needed
to build and verify circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.logic.truth_table import TruthTable
from repro.reversible.tbs import MAX_TBS_LINES
from repro.utils.bitops import clog2

__all__ = [
    "EmbeddedFunction",
    "minimum_additional_lines",
    "bennett_embedding",
    "optimum_embedding",
]


@dataclass
class EmbeddedFunction:
    """A reversible embedding of an irreversible function.

    ``permutation[s]`` is the image of the full line state ``s`` (an integer
    over ``num_lines`` bits, line 0 being bit 0).  ``input_lines[i]`` is the
    line carrying input bit ``i`` at the circuit boundary, ``output_lines[j]``
    the line carrying output bit ``j`` after the transformation, and
    ``constant_lines`` maps ancilla lines to their required initial value.
    The remaining output values are garbage.
    """

    num_lines: int
    permutation: np.ndarray
    input_lines: List[int]
    output_lines: List[int]
    constant_lines: Dict[int, int]
    source: TruthTable
    kind: str

    def num_inputs(self) -> int:
        """Number of primary-input bits."""
        return len(self.input_lines)

    def num_outputs(self) -> int:
        """Number of primary-output bits."""
        return len(self.output_lines)

    def additional_lines(self) -> int:
        """Number of lines beyond the input count."""
        return self.num_lines - len(self.input_lines)

    def is_valid(self) -> bool:
        """Check that the permutation is a bijection embedding the source."""
        if sorted(self.permutation.tolist()) != list(range(1 << self.num_lines)):
            return False
        return self.check_embeds()

    def check_embeds(self) -> bool:
        """Check Eq. (1): with constants applied, the outputs realise f."""
        for x in range(1 << self.source.num_inputs):
            state = self.state_for_input(x)
            image = int(self.permutation[state])
            value = 0
            for j, line in enumerate(self.output_lines):
                if (image >> line) & 1:
                    value |= 1 << j
            if value != self.source.evaluate(x):
                return False
        return True

    def state_for_input(self, input_word: int) -> int:
        """Initial line state encoding a primary-input word."""
        state = 0
        for i, line in enumerate(self.input_lines):
            if (input_word >> i) & 1:
                state |= 1 << line
        for line, value in self.constant_lines.items():
            if value:
                state |= 1 << line
        return state


def minimum_additional_lines(table: TruthTable) -> int:
    """Eq. (3): ``ceil(log2(max |collision set|))`` additional lines."""
    collisions = table.max_collisions()
    if collisions <= 1:
        return 0
    return clog2(collisions)


def _check_embedding_lines(num_lines: int, kind: str) -> None:
    if num_lines > MAX_TBS_LINES:
        raise ValueError(
            f"{kind} embedding needs {num_lines} lines, i.e. an explicit "
            f"2^{num_lines}-entry permutation table; the explicit flow is "
            f"capped at MAX_TBS_LINES={MAX_TBS_LINES} lines"
        )


def bennett_embedding(table: TruthTable) -> EmbeddedFunction:
    """Theorem 1: inputs preserved, outputs XORed onto fresh zero lines.

    Raises :class:`ValueError` when ``n + m`` exceeds
    :data:`repro.reversible.tbs.MAX_TBS_LINES` (the explicit permutation
    table would not be allocatable).
    """
    n = table.num_inputs
    m = table.num_outputs
    num_lines = n + m
    _check_embedding_lines(num_lines, "bennett")

    states = np.arange(1 << num_lines, dtype=np.int64)
    input_part = states & ((1 << n) - 1)
    output_part = states >> n
    images = np.array(
        [int(table.words[x]) for x in range(1 << n)], dtype=np.int64
    )
    permutation = (input_part | ((output_part ^ images[input_part]) << n)).astype(
        np.int64
    )

    return EmbeddedFunction(
        num_lines=num_lines,
        permutation=permutation,
        input_lines=list(range(n)),
        output_lines=list(range(n, n + m)),
        constant_lines={line: 0 for line in range(n, n + m)},
        source=table,
        kind="bennett",
    )


def optimum_embedding(table: TruthTable, extra_lines: Optional[int] = None) -> EmbeddedFunction:
    """Minimum-line embedding computed from the explicit function.

    The embedding uses ``r = max(n, m + l)`` lines where ``l`` is the bound
    of Eq. (3).  The reversible function maps the state ``(x, 0)`` to a state
    whose top ``m`` lines carry ``f(x)`` and whose remaining lines carry the
    collision index of ``x`` within its output class (the garbage).  States
    with non-zero ancilla inputs are completed to a bijection greedily.

    ``extra_lines`` may force a larger number of additional lines (useful
    for experiments); it must be at least the minimum.

    Raises :class:`ValueError` when the embedding needs more lines than
    :data:`repro.reversible.tbs.MAX_TBS_LINES` (the explicit ``2^n``
    permutation table would not be allocatable — previously this surfaced
    as an opaque ``MemoryError`` or a machine grinding into swap).
    """
    n = table.num_inputs
    m = table.num_outputs
    minimum = minimum_additional_lines(table)
    if extra_lines is None:
        extra_lines = minimum
    if extra_lines < minimum:
        raise ValueError(
            f"extra_lines={extra_lines} is below the minimum {minimum} required"
        )
    num_lines = max(n, m + extra_lines)
    _check_embedding_lines(num_lines, "optimum")
    garbage_width = num_lines - m
    size = 1 << num_lines

    permutation = np.full(size, -1, dtype=np.int64)
    used = np.zeros(size, dtype=bool)

    # Assign the meaningful part of the domain: state (x padded with zero
    # constants) maps to (garbage index, f(x)) with f on the top m lines.
    # Among the free garbage indices of an output class we prefer the one
    # matching the input's low bits: this keeps the embedded permutation
    # close to the identity, which directly reduces the work (and therefore
    # the T-count) of the downstream transformation-based synthesis.
    garbage_used: Dict[int, set] = {}
    garbage_mask = (1 << garbage_width) - 1
    for x in range(1 << n):
        value = int(table.words[x])
        taken = garbage_used.setdefault(value, set())
        preferred = x & garbage_mask
        if preferred not in taken:
            index = preferred
        else:
            index = next(i for i in range(1 << garbage_width) if i not in taken)
        taken.add(index)
        if len(taken) > (1 << garbage_width):
            raise AssertionError(
                "collision index exceeds garbage capacity; embedding bound violated"
            )
        image = (value << garbage_width) | index
        permutation[x] = image
        used[image] = True

    # Complete the permutation for the remaining (don't-care) input states:
    # keep every state that is still free as a fixed point, then match the
    # leftovers in order.  Fixed points are free for the synthesis algorithm.
    deferred = []
    for state in range(size):
        if permutation[state] >= 0:
            continue
        if not used[state]:
            permutation[state] = state
            used[state] = True
        else:
            deferred.append(state)
    free_images = np.nonzero(~used)[0]
    assert len(free_images) == len(deferred)
    for state, image in zip(deferred, free_images):
        permutation[state] = image

    return EmbeddedFunction(
        num_lines=num_lines,
        permutation=permutation,
        input_lines=list(range(n)),
        output_lines=list(range(garbage_width, num_lines)),
        constant_lines={line: 0 for line in range(n, num_lines)},
        source=table,
        kind="optimum",
    )
