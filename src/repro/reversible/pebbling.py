"""Reversible pebbling schedules over a LUT DAG (the LUT-based flow).

The LUT-based hierarchical flow of the paper covers the optimised AIG with
k-input LUTs and then plays a *reversible pebble game* on the LUT DAG: a
pebble on a LUT means its value is currently held on an ancilla line.  A
pebble may be placed (the LUT is *computed*) or removed (the LUT is
*uncomputed*, returning its ancilla to zero) only while all of its fanin
LUTs carry pebbles, because both directions re-apply the same gate block
reading the fanin lines.  Primary outputs are *copied* off a pebbled LUT
onto dedicated output lines.  The number of pebbles in play bounds the
number of live ancillas — i.e. the qubit count — while recomputation adds
gates; scheduling the game therefore trades qubits against T-count.

This module provides the schedule IR and three scheduling strategies:

* :func:`bennett_schedule`  — compute every LUT once, copy all outputs,
  uncompute in reverse; pebble peak equals the number of LUTs, gate count
  is minimal (every LUT is computed exactly twice).
* :func:`eager_schedule`    — compute, copy and immediately uncompute one
  output cone at a time (the REVS-style eager cleanup); pebble peak equals
  the largest single-output cone, logic shared between outputs is
  recomputed per output.
* :func:`bounded_schedule`  — a budgeted heuristic: pebbles are kept around
  for reuse across outputs, and when the budget ``max_pebbles`` is reached
  parent-free pebbles are evicted (their LUTs uncomputed) and recomputed
  later if needed.  This interpolates between the two extremes.

Every schedule is machine-checkable: :func:`validate_schedule` replays the
pebble game and raises :class:`InvalidScheduleError` on the first step
whose preconditions do not hold, on a budget violation, or when ancillas
are left dirty at the end.  The executor
(:mod:`repro.reversible.lut_synth`) validates before synthesising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.logic.aig import lit_node
from repro.logic.cuts import LutMapping

__all__ = [
    "COMPUTE",
    "COPY",
    "InvalidScheduleError",
    "PEBBLING_STRATEGIES",
    "PebbleSchedule",
    "PebbleStep",
    "ScheduleStats",
    "UNCOMPUTE",
    "bennett_schedule",
    "bounded_schedule",
    "eager_schedule",
    "make_schedule",
    "minimum_pebbles",
    "validate_schedule",
]

#: Step opcodes.
COMPUTE = "compute"
UNCOMPUTE = "uncompute"
COPY = "copy"

#: The built-in scheduling strategies accepted by :func:`make_schedule`
#: (and by the ``lut`` flow's ``strategy`` parameter).  ``"per_output"`` is
#: accepted as an alias of ``"eager"``, mirroring
#: :mod:`repro.reversible.hierarchical`.  Strategies live in the registry
#: of :mod:`repro.reversible.strategies`; ``"exact"`` is defined by
#: :mod:`repro.reversible.exact_pebbling`.
PEBBLING_STRATEGIES = ("bennett", "eager", "bounded", "exact")


class InvalidScheduleError(ValueError):
    """A pebble schedule violated the pebble-game rules."""


@dataclass(frozen=True)
class PebbleStep:
    """One move of the pebble game.

    ``op`` is :data:`COMPUTE`, :data:`UNCOMPUTE` or :data:`COPY`.  ``node``
    is the LUT root being (un)pebbled, or the AIG node driving the copied
    output.  ``output`` is the primary-output index for :data:`COPY` steps
    and ``None`` otherwise.
    """

    op: str
    node: int
    output: Optional[int] = None

    def __str__(self) -> str:
        if self.op == COPY:
            return f"copy(po{self.output} <- n{self.node})"
        return f"{self.op}(n{self.node})"


@dataclass(frozen=True)
class ScheduleStats:
    """Replay statistics of a valid schedule."""

    pebble_peak: int
    num_computes: int
    num_uncomputes: int
    num_copies: int

    @property
    def num_steps(self) -> int:
        return self.num_computes + self.num_uncomputes + self.num_copies


@dataclass
class PebbleSchedule:
    """A pebbling schedule bound to the LUT mapping it plays on."""

    mapping: LutMapping
    steps: List[PebbleStep] = field(default_factory=list)
    strategy: str = "custom"
    max_pebbles: Optional[int] = None
    #: Cached replay statistics; filled by :meth:`stats`.  Mutating
    #: :attr:`steps` after validation invalidates the cache — build a new
    #: schedule instead.
    _stats: Optional[ScheduleStats] = field(
        default=None, repr=False, compare=False
    )
    #: Free-form provenance metadata: the exact engine records which SAT
    #: mode produced the schedule, whether optimality was proven, and its
    #: solver effort here.  Never interpreted by the executor.
    info: Dict = field(default_factory=dict, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def compute_steps(self) -> List[PebbleStep]:
        """The compute steps in schedule order."""
        return [step for step in self.steps if step.op == COMPUTE]

    def uncompute_steps(self) -> List[PebbleStep]:
        """The uncompute steps in schedule order."""
        return [step for step in self.steps if step.op == UNCOMPUTE]

    def stats(self) -> ScheduleStats:
        """Validate the schedule and return the (cached) replay statistics."""
        if self._stats is None:
            self._stats = validate_schedule(self)
        return self._stats

    def pebble_peak(self) -> int:
        """Largest number of simultaneously pebbled LUTs (replays the game)."""
        return self.stats().pebble_peak

    def num_recomputes(self) -> int:
        """Compute steps beyond the first per LUT (the recomputation cost)."""
        return len(self.compute_steps()) - len(
            {step.node for step in self.steps if step.op == COMPUTE}
        )


def validate_schedule(schedule: PebbleSchedule) -> ScheduleStats:
    """Replay a schedule and check every pebble-game rule.

    Raises :class:`InvalidScheduleError` when a step computes an unknown or
    already-pebbled LUT, (un)computes a LUT whose fanin LUTs are not all
    pebbled, copies an output whose driver is not pebbled, copies an output
    twice, exceeds the declared ``max_pebbles`` budget, misses an output,
    or leaves pebbles (dirty ancillas) at the end.  Returns the replay
    statistics on success.
    """
    mapping = schedule.mapping
    pebbled: Set[int] = set()
    copied: Set[int] = set()
    pos = mapping.aig.pos()
    peak = 0
    computes = uncomputes = copies = 0

    def _require_fanins(step: PebbleStep) -> None:
        missing = [d for d in mapping.dependencies(step.node) if d not in pebbled]
        if missing:
            raise InvalidScheduleError(
                f"step {step} requires pebbles on fanin LUTs {missing}"
            )

    for index, step in enumerate(schedule.steps):
        if step.op == COMPUTE:
            if step.node not in mapping.luts:
                raise InvalidScheduleError(f"step {index}: {step.node} is not a LUT root")
            if step.node in pebbled:
                raise InvalidScheduleError(f"step {index}: {step} is already pebbled")
            _require_fanins(step)
            pebbled.add(step.node)
            peak = max(peak, len(pebbled))
            computes += 1
            if schedule.max_pebbles is not None and len(pebbled) > schedule.max_pebbles:
                raise InvalidScheduleError(
                    f"step {index}: {len(pebbled)} pebbles exceed the declared "
                    f"budget of {schedule.max_pebbles}"
                )
        elif step.op == UNCOMPUTE:
            if step.node not in pebbled:
                raise InvalidScheduleError(f"step {index}: {step} is not pebbled")
            _require_fanins(step)
            pebbled.discard(step.node)
            uncomputes += 1
        elif step.op == COPY:
            if step.output is None or not 0 <= step.output < len(pos):
                raise InvalidScheduleError(
                    f"step {index}: {step} names no valid primary output"
                )
            if step.output in copied:
                raise InvalidScheduleError(
                    f"step {index}: output {step.output} copied twice"
                )
            driver = lit_node(pos[step.output])
            if step.node != driver:
                raise InvalidScheduleError(
                    f"step {index}: {step} does not match the output driver "
                    f"node {driver}"
                )
            if driver in mapping.luts and driver not in pebbled:
                raise InvalidScheduleError(
                    f"step {index}: output {step.output} copied while its "
                    f"driver LUT {driver} is unpebbled"
                )
            copied.add(step.output)
            copies += 1
        else:
            raise InvalidScheduleError(f"step {index}: unknown op {step.op!r}")

    if pebbled:
        raise InvalidScheduleError(
            f"{len(pebbled)} ancillas left dirty at the end of the schedule: "
            f"{sorted(pebbled)}"
        )
    missing_outputs = sorted(set(range(len(pos))) - copied)
    if missing_outputs:
        raise InvalidScheduleError(f"outputs never copied: {missing_outputs}")
    return ScheduleStats(peak, computes, uncomputes, copies)


def _copy_step(mapping: LutMapping, output: int) -> PebbleStep:
    return PebbleStep(COPY, lit_node(mapping.aig.pos()[output]), output)


# -- strategies ---------------------------------------------------------------


def bennett_schedule(mapping: LutMapping) -> PebbleSchedule:
    """Compute every LUT, copy all outputs, uncompute everything in reverse."""
    steps = [PebbleStep(COMPUTE, root) for root in mapping.order]
    steps += [_copy_step(mapping, j) for j in range(mapping.aig.num_pos())]
    steps += [PebbleStep(UNCOMPUTE, root) for root in reversed(mapping.order)]
    return PebbleSchedule(mapping, steps, strategy="bennett")


def eager_schedule(mapping: LutMapping) -> PebbleSchedule:
    """Per-output cleanup: compute, copy and uncompute one cone at a time."""
    steps: List[PebbleStep] = []
    for j, po in enumerate(mapping.aig.pos()):
        cone = mapping.lut_cone(lit_node(po))
        steps += [PebbleStep(COMPUTE, root) for root in cone]
        steps.append(_copy_step(mapping, j))
        steps += [PebbleStep(UNCOMPUTE, root) for root in reversed(cone)]
    return PebbleSchedule(mapping, steps, strategy="eager")


class _BoundedScheduler:
    """Budgeted pebbling: shared pebbles with recompute-on-demand eviction.

    The scheduler keeps every computed LUT pebbled (so logic shared between
    outputs is reused, like the Bennett strategy) until the pebble budget
    is reached; it then evicts pebbles whose fanin LUTs are all currently
    pebbled — the pebble-game precondition for uncomputing — and recomputes
    them on demand if they are needed again.  A pebble whose fanins were
    evicted underneath it (an *orphan*) is not evictable immediately, but
    its value remains correct, and the final cleanup re-pebbles fanins
    before uncomputing.  Pins protect the fanins of the LUT currently being
    (un)computed from eviction; a budget that cannot accommodate the pinned
    recursion path is infeasible and raises :class:`ValueError`.
    """

    def __init__(self, mapping: LutMapping, max_pebbles: int):
        if max_pebbles < 1:
            raise ValueError("max_pebbles must be at least 1")
        self.mapping = mapping
        self.budget = max_pebbles
        self.steps: List[PebbleStep] = []
        self.live: Set[int] = set()
        self.pins: Dict[int, int] = {}
        # Descending-cone-size recursion order: computing the largest
        # sub-cone first holds the fewest sibling pins while the deepest
        # recursion is in flight.
        self._cone_size = {
            root: len(mapping.lut_cone(root)) for root in mapping.order
        }

    # -- bookkeeping ----------------------------------------------------------

    def _pin(self, node: int) -> None:
        self.pins[node] = self.pins.get(node, 0) + 1

    def _unpin(self, node: int) -> None:
        self.pins[node] -= 1
        if not self.pins[node]:
            del self.pins[node]

    def _ordered_deps(self, node: int) -> List[int]:
        return sorted(
            self.mapping.dependencies(node),
            key=lambda dep: (-self._cone_size[dep], dep),
        )

    # -- the game -------------------------------------------------------------

    def _evictable(self, node: int) -> bool:
        return node not in self.pins and all(
            dep in self.live for dep in self.mapping.dependencies(node)
        )

    def _make_room(self) -> None:
        while len(self.live) >= self.budget:
            candidates = [node for node in self.live if self._evictable(node)]
            if not candidates:
                raise ValueError(
                    f"max_pebbles={self.budget} is too small for this LUT "
                    f"DAG: {len(self.live)} pebbles are pinned or orphaned"
                )
            # Evict the highest-index (deepest) candidate: it is the
            # furthest from the inputs and therefore the least likely to be
            # needed as a fanin of upcoming computations.
            victim = max(candidates)
            self.steps.append(PebbleStep(UNCOMPUTE, victim))
            self.live.discard(victim)

    def _ensure(self, root: int) -> None:
        """Place a pebble on ``root``, recomputing evicted fanins on demand.

        An explicit DFS stack (not recursion): LUT dependency chains grow
        with the design depth, and a deep chain must not overflow the
        Python recursion limit.  Each frame pins the fanins it has secured
        so far; a fanin is pinned when its own frame completes.
        """
        if root in self.live:
            return
        # frame: [node, iterator over remaining deps, deps pinned so far]
        stack = [[root, iter(self._ordered_deps(root)), []]]
        while stack:
            node, deps, pinned = stack[-1]
            for dep in deps:
                if dep in self.live:
                    self._pin(dep)
                    pinned.append(dep)
                    continue
                stack.append([dep, iter(self._ordered_deps(dep)), []])
                break
            else:
                self._make_room()
                self.steps.append(PebbleStep(COMPUTE, node))
                self.live.add(node)
                for dep in pinned:
                    self._unpin(dep)
                stack.pop()
                if stack:
                    self._pin(node)
                    stack[-1][2].append(node)

    def _release(self, node: int) -> None:
        """Remove the pebble from ``node``, recomputing fanins if needed."""
        # Pin the node itself: the eviction inside _ensure could otherwise
        # pick it as a victim and uncompute it twice.
        self._pin(node)
        pinned: List[int] = [node]
        try:
            for dep in self._ordered_deps(node):
                self._ensure(dep)
                self._pin(dep)
                pinned.append(dep)
            self.steps.append(PebbleStep(UNCOMPUTE, node))
            self.live.discard(node)
        finally:
            for dep in pinned:
                self._unpin(dep)

    def run(self) -> List[PebbleStep]:
        mapping = self.mapping
        for j, po in enumerate(mapping.aig.pos()):
            driver = lit_node(po)
            if driver in mapping.luts:
                self._ensure(driver)
            self.steps.append(_copy_step(mapping, j))
        # Final cleanup: uncompute the remaining pebbles top-down.  Node
        # indices are topological, so the highest-index pebble never has a
        # pebbled parent; its fanins are recomputed on demand.
        while self.live:
            self._release(max(self.live))
        return self.steps


#: Growth factor of the anchor-budget ladder evaluated by
#: :func:`bounded_schedule`.
_ANCHOR_GROWTH = 1.25


def _pebble_memo(mapping: LutMapping) -> Dict:
    """Per-mapping memo of greedy runs (attached to the mapping object)."""
    memo = getattr(mapping, "_pebble_memo", None)
    if memo is None:
        memo = {"greedy": {}, "cost": {}, "block_gates": {}}
        mapping._pebble_memo = memo
    return memo


def _greedy_steps(mapping: LutMapping, budget: int) -> Optional[List[PebbleStep]]:
    """The greedy run for one budget, or ``None`` when it is infeasible.

    Greedy feasibility is *not* monotone in the budget (the eviction choice
    changes with the budget, and an unlucky choice can strand the
    scheduler), so both outcomes are memoized and callers must treat an
    infeasible budget as skippable rather than as a lower bound.
    """
    memo = _pebble_memo(mapping)
    if budget not in memo["greedy"]:
        try:
            memo["greedy"][budget] = _BoundedScheduler(mapping, budget).run()
        except ValueError:
            memo["greedy"][budget] = None
    return memo["greedy"][budget]


def _estimated_gates(mapping: LutMapping, steps: Sequence[PebbleStep]) -> int:
    """Gate count of the default (ESOP) executor for a step list.

    Deterministic in the schedule alone, so it can rank candidate schedules
    without synthesising circuits.  Uses the same
    :func:`~repro.logic.esop.psdkro_cubes` primitive as the executor's
    blocks, so the estimate cannot drift from the synthesised gate count.
    """
    from repro.logic.esop import psdkro_cubes

    memo = _pebble_memo(mapping)
    block_gates = memo["block_gates"]

    def lut_gates(root: int) -> int:
        if root not in block_gates:
            leaves, truth = mapping.luts[root]
            block_gates[root] = len(psdkro_cubes(truth, len(leaves)))
        return block_gates[root]

    total = 0
    for step in steps:
        if step.op == COPY:
            po = mapping.aig.pos()[step.output]
            if lit_node(po) != 0:
                total += 1
            if po & 1:
                total += 1
        else:
            total += lut_gates(step.node)
    return total


def _anchor_budgets(maximum: int) -> List[int]:
    """Geometric ladder of budgets from 1 to ``maximum``, dense at the start."""
    anchors = []
    budget = 1
    while budget < maximum:
        anchors.append(budget)
        budget = max(budget + 1, int(round(budget * _ANCHOR_GROWTH)))
    anchors.append(maximum)
    return anchors


def _schedule_cost(mapping: LutMapping, budget: int) -> Optional[Tuple[int, int]]:
    """Memoized (estimated gates, steps) of one greedy run; ``None`` if infeasible."""
    memo = _pebble_memo(mapping)
    if budget not in memo["cost"]:
        steps = _greedy_steps(mapping, budget)
        memo["cost"][budget] = (
            None if steps is None else (_estimated_gates(mapping, steps), len(steps))
        )
    return memo["cost"][budget]


def bounded_schedule(mapping: LutMapping, max_pebbles) -> PebbleSchedule:
    """A schedule that never holds more than ``max_pebbles`` pebbles.

    ``max_pebbles`` is an absolute pebble budget; a float in ``(0, 1)`` is
    accepted as a fraction of the LUT count (raised to
    :func:`minimum_pebbles` when the fraction lands below it, convenient
    for sweeps over designs of unknown size).  A budget no scheduler run
    can satisfy raises :class:`ValueError`.

    The heuristic evaluates the greedy scheduler on a geometric ladder of
    anchor budgets up to ``max_pebbles`` — anchors whose greedy run is
    infeasible are skipped, since greedy feasibility is not monotone in
    the budget — and keeps the cheapest result by the deterministic
    gate-count estimate of the ESOP executor.  Because a larger budget
    only ever *adds* anchors to the candidate set, the gate count is
    monotonically non-increasing in the budget for every budget at or
    above :func:`minimum_pebbles` — the metamorphic guarantee the test
    suite pins — while every candidate's pebble peak is bounded by its own
    anchor and therefore by ``max_pebbles``.  Below the minimum, the
    budget itself is probed as a last resort before rejecting, so a valid
    user budget is never refused on the ladder's account.
    """
    if isinstance(max_pebbles, float) and 0 < max_pebbles < 1:
        max_pebbles = max(
            minimum_pebbles(mapping),
            int(round(max_pebbles * mapping.num_luts())),
        )
    max_pebbles = int(max_pebbles)
    if max_pebbles < 1:
        raise ValueError("max_pebbles must be at least 1")
    memo = _pebble_memo(mapping)
    best: Optional[List[PebbleStep]] = None
    best_cost: Optional[Tuple[int, int]] = None
    for anchor in _anchor_budgets(max(1, mapping.num_luts())):
        if anchor > max_pebbles:
            break
        cost = _schedule_cost(mapping, anchor)
        if cost is None:
            continue
        if best_cost is None or cost < best_cost:
            best, best_cost = memo["greedy"][anchor], cost
    if best is None:
        # No feasible anchor at or below the budget: probe the budget
        # itself before giving up (feasibility is not monotone, so a
        # non-anchor budget may still work).
        if _schedule_cost(mapping, max_pebbles) is not None:
            best = memo["greedy"][max_pebbles]
        else:
            raise ValueError(
                f"max_pebbles={max_pebbles} is below the scheduler's "
                f"minimum of {minimum_pebbles(mapping)} for this LUT DAG"
            )
    return PebbleSchedule(
        mapping, list(best), strategy="bounded", max_pebbles=max_pebbles
    )


def minimum_pebbles(mapping: LutMapping) -> int:
    """Smallest anchor budget the bounded scheduler is guaranteed to accept.

    Every ``max_pebbles`` at or above this value succeeds (and enjoys the
    monotone gate-count guarantee); a smaller budget may still be accepted
    when its own greedy run happens to be feasible.  This is the
    heuristic's threshold, an upper bound on the optimal pebbling number
    of the DAG.  The result and every probe run are memoized on the
    mapping object.
    """
    memo = _pebble_memo(mapping)
    if "minimum" not in memo:
        for anchor in _anchor_budgets(max(1, mapping.num_luts())):
            if _greedy_steps(mapping, anchor) is not None:
                memo["minimum"] = anchor
                break
        else:  # pragma: no cover - the full-DAG budget never evicts
            memo["minimum"] = max(1, mapping.num_luts())
    return memo["minimum"]


def make_schedule(
    mapping: LutMapping,
    strategy: str = "bennett",
    max_pebbles=None,
    **options,
) -> PebbleSchedule:
    """Build and validate a schedule with the named strategy.

    ``strategy`` is resolved through the registry of
    :mod:`repro.reversible.strategies` — one of
    :data:`PEBBLING_STRATEGIES` or a registered alias (``"per_output"``
    maps to ``"eager"``); unknown names raise
    :class:`~repro.reversible.strategies.UnknownStrategyError` (a
    ``ValueError``) with a did-you-mean suggestion.  ``max_pebbles`` is
    meaningful for ``"bounded"`` and ``"exact"``; strategy-specific
    options (the exact engine's ``time_budget``) pass through as keyword
    arguments.
    """
    from repro.reversible.strategies import get_strategy

    schedule = get_strategy(strategy).build(
        mapping, max_pebbles=max_pebbles, **options
    )
    schedule.stats()  # validate once; callers reuse the cached statistics
    return schedule


def _build_bennett(mapping, max_pebbles=None, **options):
    _reject_options("bennett", options)
    return bennett_schedule(mapping)


def _build_eager(mapping, max_pebbles=None, **options):
    _reject_options("eager", options)
    return eager_schedule(mapping)


def _build_bounded(mapping, max_pebbles=None, **options):
    _reject_options("bounded", options)
    return bounded_schedule(mapping, 0.5 if max_pebbles is None else max_pebbles)


def _reject_options(strategy: str, options: Dict) -> None:
    if options:
        raise TypeError(
            f"strategy {strategy!r} accepts no options, got "
            f"{sorted(options)}"
        )


def _register_builtin_strategies() -> None:
    from repro.reversible.strategies import (
        PebblingStrategy,
        register_strategy,
    )

    register_strategy(
        PebblingStrategy(
            "bennett",
            _build_bennett,
            "compute all, copy outputs, uncompute in reverse (qubit-max, "
            "gate-min)",
        )
    )
    register_strategy(
        PebblingStrategy(
            "eager",
            _build_eager,
            "per-output compute/copy/uncompute (REVS-style eager cleanup)",
            aliases=("per_output",),
        )
    )
    register_strategy(
        PebblingStrategy(
            "bounded",
            _build_bounded,
            "budgeted greedy with eviction and recompute-on-demand "
            "(max_pebbles: absolute count or fraction of the LUT count; "
            "default 0.5)",
        )
    )


_register_builtin_strategies()
