"""Packed columnar storage of Toffoli-gate cascades.

The symbolic flow produces cascades of hundreds of thousands of
multiple-controlled Toffoli gates (211k gates for INTDIV(8), millions for
n >= 10).  Holding one frozen :class:`~repro.reversible.gates.ToffoliGate`
dataclass per gate makes every cost sweep, peephole pass and replay an
interpreted per-object loop — the bookkeeping, not the synthesis kernels,
becomes the bit-width ceiling.

:class:`GateStore` therefore keeps the cascade as parallel *columns*:

* ``targets`` — the target line of every gate,
* ``care`` / ``polarity`` — the control masks of every gate, as Python
  big-ints (width-agnostic: lines may be added to a circuit after gates
  exist, so the word width is only fixed when a packed NumPy view is
  requested),
* ``raw_controls`` — the raw ``num_controls()`` (duplicate entries counted,
  matching the object API),
* an optional parallel list of lazily materialised gate objects, so the
  object API (``gates()``, pickling, equality against hand-built circuits)
  is preserved without paying for objects on the mask-native hot path.

The mask encoding is exactly that of
:meth:`~repro.reversible.gates.ToffoliGate.control_masks`: a gate triggers
on state ``s`` iff ``s & care == polarity``; statically unsatisfiable gates
carry their target bit in ``polarity`` (never in ``care``), so
``polarity & ~care != 0`` identifies them mask-natively.

A store is *canonical* while every gate it holds has strictly ascending,
duplicate-free control lines — then a gate materialised from its masks is
equal (as a dataclass) to the object the caller supplied, and mask
equality coincides with object equality.  The vectorised peephole passes
of :mod:`repro.reversible.optimize` rely on this flag and fall back to the
``*_reference`` object-path implementations on non-canonical stores, which
keeps their outputs byte-identical in every case.

:meth:`packed` exposes the columns as cached NumPy arrays — ``(G,)``
targets / control counts and ``(G, W)`` ``uint64`` mask words (multi-word
past 64 lines, mirroring the bit-sliced kernels of PRs 8-9) — which is
what the vectorised T-count, depth and pass kernels consume.  The cache
and the derived statistics (:attr:`stats`) are invalidated on mutation and
shared across :meth:`copy`, so a pipeline that threads an unchanged
cascade through several passes computes each statistic once.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.reversible.gates import ToffoliGate

__all__ = ["GateStore", "PackedGates", "popcount_words"]

_WORD_BITS = 64

if hasattr(int, "bit_count"):  # Python >= 3.10

    def bit_count(value: int) -> int:
        """Population count of a non-negative Python integer."""
        return value.bit_count()

else:  # pragma: no cover - exercised on the 3.9 CI leg

    def bit_count(value: int) -> int:
        """Population count of a non-negative Python integer."""
        return bin(value).count("1")


_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")  # NumPy >= 2.0
#: Per-byte popcount table for the NumPy < 2 fallback.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a ``(G, W)`` ``uint64`` word matrix.

    Uses ``np.bitwise_count`` when available (NumPy >= 2.0) and a per-byte
    lookup table otherwise, so the kernels behave identically across the CI
    NumPy matrix.
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT8[as_bytes].sum(axis=1, dtype=np.int64)


def _pack_mask_column(values: List[int], num_words: int) -> np.ndarray:
    """Pack a list of Python-int masks into a ``(G, W)`` ``uint64`` matrix."""
    count = len(values)
    if num_words == 1:
        return np.fromiter(values, dtype=np.uint64, count=count).reshape(count, 1)
    width = num_words * 8
    buffer = b"".join(value.to_bytes(width, "little") for value in values)
    packed = np.frombuffer(buffer, dtype="<u8").reshape(count, num_words)
    return packed.astype(np.uint64, copy=False)


class PackedGates:
    """Cached NumPy view of a :class:`GateStore` (read-only by convention)."""

    __slots__ = (
        "num_words",
        "targets",
        "raw_controls",
        "care",
        "polarity",
        "effective",
        "unsat",
    )

    def __init__(
        self,
        num_words: int,
        targets: np.ndarray,
        raw_controls: np.ndarray,
        care: np.ndarray,
        polarity: np.ndarray,
    ):
        self.num_words = num_words
        self.targets = targets
        self.raw_controls = raw_controls
        self.care = care
        self.polarity = polarity
        #: Normalised control count: duplicate entries collapse into the
        #: care mask, so its popcount is what the T-count models charge.
        self.effective = popcount_words(care)
        #: Statically unsatisfiable gates carry their target bit in the
        #: polarity mask outside the care mask (cf. ToffoliGate.control_masks).
        self.unsat = (polarity & ~care).any(axis=1)

    def __len__(self) -> int:
        return len(self.targets)


class GateStore:
    """Columnar gate storage with lazy object materialisation."""

    __slots__ = (
        "_targets",
        "_care",
        "_polarity",
        "_raw",
        "_objects",
        "_pending_front",
        "_canonical",
        "_memo",
        "_packed",
        "_stats",
    )

    def __init__(self) -> None:
        self._targets: List[int] = []
        self._care: List[int] = []
        self._polarity: List[int] = []
        self._raw: List[int] = []
        #: Parallel list of materialised gate objects (``None`` holes for
        #: mask-appended gates); ``None`` while no object exists at all.
        self._objects: Optional[List[Optional[ToffoliGate]]] = None
        #: Prepended gates in call order (newest last); merged into the
        #: columns lazily so ``prepend`` is amortised O(1).
        self._pending_front: List[
            Tuple[int, int, int, int, Optional[ToffoliGate]]
        ] = []
        self._canonical = True
        #: (care, polarity, target) -> materialised gate; shared across
        #: copies (content-keyed and append-only, so sharing is safe).
        self._memo: Dict[Tuple[int, int, int], ToffoliGate] = {}
        self._packed: Optional[PackedGates] = None
        #: Derived statistics (t_count per model, depth, ...) keyed by the
        #: consumers; cleared on every mutation, carried across copies.
        self._stats: Dict[object, object] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        targets: List[int],
        care: List[int],
        polarity: List[int],
        raw: List[int],
        objects: Optional[List[Optional[ToffoliGate]]] = None,
        canonical: bool = True,
        memo: Optional[Dict[Tuple[int, int, int], ToffoliGate]] = None,
    ) -> "GateStore":
        """Build a store directly from parallel columns (takes ownership)."""
        store = cls()
        store._targets = targets
        store._care = care
        store._polarity = polarity
        store._raw = raw
        store._objects = objects
        store._canonical = canonical
        if memo is not None:
            store._memo = memo
        return store

    # -- invariants and caches ------------------------------------------------

    def _invalidate(self) -> None:
        self._packed = None
        if self._stats:
            self._stats = {}

    def clear_caches(self) -> None:
        """Drop the packed view and derived statistics (not the objects).

        Semantically a no-op — both caches rebuild on demand.  Benchmarks
        use this to time the cold kernel paths on an otherwise warm store.
        """
        self._invalidate()

    def _consolidate(self) -> None:
        """Merge pending prepends into the front of the columns."""
        front = self._pending_front
        if not front:
            return
        self._pending_front = []
        front.reverse()  # newest prepend must end up first in cascade order
        self._targets[:0] = [entry[0] for entry in front]
        self._care[:0] = [entry[1] for entry in front]
        self._polarity[:0] = [entry[2] for entry in front]
        self._raw[:0] = [entry[3] for entry in front]
        if self._objects is None and any(entry[4] is not None for entry in front):
            self._objects = [None] * (len(self._targets) - len(front))
        if self._objects is not None:
            self._objects[:0] = [entry[4] for entry in front]

    def is_canonical(self) -> bool:
        """True while every gate has strictly ascending control lines.

        On a canonical store, materialising a gate from its masks yields an
        object equal to the one the caller supplied, and mask equality
        coincides with gate-object equality — the precondition of the
        vectorised peephole passes.
        """
        return self._canonical

    @property
    def stats(self) -> Dict[object, object]:
        """Mutation-invalidated scratch space for derived statistics."""
        return self._stats

    # -- size -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._targets) + len(self._pending_front)

    # -- mutation -------------------------------------------------------------

    def append(
        self,
        target: int,
        care: int,
        polarity: int,
        raw_controls: int,
        obj: Optional[ToffoliGate],
        canonical: bool = True,
    ) -> None:
        """Append one gate given its mask encoding (and optional object)."""
        self._targets.append(target)
        self._care.append(care)
        self._polarity.append(polarity)
        self._raw.append(raw_controls)
        if self._objects is not None:
            self._objects.append(obj)
        elif obj is not None:
            self._objects = [None] * (len(self._targets) - 1)
            self._objects.append(obj)
        if not canonical:
            self._canonical = False
        self._invalidate()

    def prepend(
        self,
        target: int,
        care: int,
        polarity: int,
        raw_controls: int,
        obj: Optional[ToffoliGate],
        canonical: bool = True,
    ) -> None:
        """Insert one gate at the cascade front (amortised O(1))."""
        self._pending_front.append((target, care, polarity, raw_controls, obj))
        if not canonical:
            self._canonical = False
        self._invalidate()

    def extend_masks(self, triples: Sequence[Tuple[int, int, int]]) -> None:
        """Bulk mask-native append of ``(care, polarity, target)`` triples.

        The caller is responsible for validation (the circuit wrapper
        checks line bounds and mask consistency); every triple must be
        satisfiable and duplicate-free, which mask encodings produced by
        the synthesis kernels are by construction.
        """
        append_target = self._targets.append
        append_care = self._care.append
        append_pol = self._polarity.append
        append_raw = self._raw.append
        objects = self._objects
        count = 0
        for care, polarity, target in triples:
            append_target(target)
            append_care(care)
            append_pol(polarity)
            append_raw(bit_count(care))
            count += 1
        if objects is not None:
            objects.extend([None] * count)
        self._invalidate()

    # -- object access --------------------------------------------------------

    def _materialize(self, care: int, polarity: int, target: int) -> ToffoliGate:
        key = (care, polarity, target)
        gate = self._memo.get(key)
        if gate is None:
            controls: List[Tuple[int, bool]] = []
            mask = care
            while mask:
                low = mask & -mask
                line = low.bit_length() - 1
                controls.append((line, bool((polarity >> line) & 1)))
                mask ^= low
            gate = ToffoliGate(tuple(controls), target)
            self._memo[key] = gate
        return gate

    def gate_at(self, index: int) -> ToffoliGate:
        """The gate object at ``index`` (materialised and cached on demand)."""
        self._consolidate()
        objects = self._objects
        if objects is not None:
            gate = objects[index]
            if gate is not None:
                return gate
        gate = self._materialize(
            self._care[index], self._polarity[index], self._targets[index]
        )
        if objects is None:
            objects = self._objects = [None] * len(self._targets)
        objects[index] = gate
        return gate

    def iter_objects(self) -> Iterator[ToffoliGate]:
        """Iterate the gate objects in cascade order without copying.

        Gates appended mask-natively are materialised (and cached) on the
        fly; the iterator is lazy, so consuming a prefix only materialises
        that prefix.  Mutating the store while iterating is undefined.
        """
        self._consolidate()
        targets, care, polarity = self._targets, self._care, self._polarity
        objects = self._objects
        if objects is None:
            objects = self._objects = [None] * len(targets)
        materialize = self._materialize
        for index in range(len(targets)):
            gate = objects[index]
            if gate is None:
                gate = objects[index] = materialize(
                    care[index], polarity[index], targets[index]
                )
            yield gate

    def num_materialized(self) -> int:
        """How many gate objects currently exist (for laziness regressions)."""
        front = sum(1 for entry in self._pending_front if entry[4] is not None)
        if self._objects is None:
            return front
        return front + sum(1 for gate in self._objects if gate is not None)

    # -- columnar access ------------------------------------------------------

    def columns(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """The raw ``(targets, care, polarity, raw_controls)`` columns.

        The returned lists are the store's own storage — callers must treat
        them as read-only.
        """
        self._consolidate()
        return self._targets, self._care, self._polarity, self._raw

    def packed(self, num_lines: int) -> PackedGates:
        """Cached NumPy view of the columns, ``W`` words per mask.

        ``num_lines`` fixes the word width (lines may be added to a circuit
        after gates exist, so the width cannot be frozen at append time);
        the cache is keyed on the resulting word count and invalidated on
        every mutation.
        """
        self._consolidate()
        num_words = max(1, -(-num_lines // _WORD_BITS))
        cached = self._packed
        if cached is not None and cached.num_words == num_words:
            return cached
        count = len(self._targets)
        packed = PackedGates(
            num_words,
            np.fromiter(self._targets, dtype=np.int64, count=count),
            np.fromiter(self._raw, dtype=np.int64, count=count),
            _pack_mask_column(self._care, num_words),
            _pack_mask_column(self._polarity, num_words),
        )
        self._packed = packed
        return packed

    # -- copies ---------------------------------------------------------------

    def copy(self) -> "GateStore":
        """An independent copy sharing the materialisation memo and caches."""
        new = GateStore.__new__(GateStore)
        new._targets = list(self._targets)
        new._care = list(self._care)
        new._polarity = list(self._polarity)
        new._raw = list(self._raw)
        new._objects = list(self._objects) if self._objects is not None else None
        new._pending_front = list(self._pending_front)
        new._canonical = self._canonical
        new._memo = self._memo
        new._packed = self._packed
        new._stats = dict(self._stats)
        return new

    def reversed_copy(self) -> "GateStore":
        """A copy with the cascade order reversed (for circuit inversion).

        Order-independent statistics (T-counts, histograms) carry over;
        order-dependent ones (greedy depth) are dropped.
        """
        self._consolidate()
        new = GateStore.__new__(GateStore)
        new._targets = self._targets[::-1]
        new._care = self._care[::-1]
        new._polarity = self._polarity[::-1]
        new._raw = self._raw[::-1]
        new._objects = self._objects[::-1] if self._objects is not None else None
        new._pending_front = []
        new._canonical = self._canonical
        new._memo = self._memo
        new._packed = None
        new._stats = {
            key: value
            for key, value in self._stats.items()
            if isinstance(key, tuple) and key and key[0] in ("t_count", "t_hist")
        }
        return new

    # -- pickling -------------------------------------------------------------

    def __getstate__(self):
        self._consolidate()
        objects = self._objects
        if objects is not None and all(gate is None for gate in objects):
            objects = None
        return {
            "targets": self._targets,
            "care": self._care,
            "polarity": self._polarity,
            "raw": self._raw,
            "objects": objects,
            "canonical": self._canonical,
        }

    def __setstate__(self, state) -> None:
        self._targets = state["targets"]
        self._care = state["care"]
        self._polarity = state["polarity"]
        self._raw = state["raw"]
        self._objects = state["objects"]
        self._pending_front = []
        self._canonical = state["canonical"]
        self._memo = {}
        self._packed = None
        self._stats = {}

    def __repr__(self) -> str:
        return (
            f"GateStore(gates={len(self)}, canonical={self._canonical}, "
            f"materialized={self.num_materialized()})"
        )
