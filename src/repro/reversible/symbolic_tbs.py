"""Symbolic functional synthesis: optimum embedding + transformation-based
synthesis (the RevKit ``tbs -s`` analogue).

The paper's functional flow collapses the optimised AIG into a BDD, derives
an optimum embedding from it and runs the SAT-based symbolic
transformation-based algorithm [7].  Neither RevKit nor a SAT solver is
available here, so this module substitutes an explicit permutation-based
implementation of the same algorithm (see DESIGN.md): the produced circuits
have the same structure (line-optimal, large multi-controlled Toffoli
gates).  The permutation kernel is bit-sliced
(:func:`repro.reversible.tbs.synthesize_permutation_gates`) and the BDD is
expanded by one shared bottom-up sweep, so the explicit representation is
no longer the flow's bottleneck up to
:data:`repro.reversible.tbs.MAX_TBS_LINES` lines.  The emitted gates go
straight into the circuit's columnar mask store
(:mod:`repro.reversible.gatestore`) — no per-gate objects — and costing
the multi-million-gate cascades is a vectorised popcount sweep, so the
benchmark default sweep (n ≤ 9) is bounded by the synthesis kernel
itself, not the cascade bookkeeping; the paper's n = 16 remains out of
CI reach (the original needed 3.2 days on a server).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Union

from repro.logic.aig import Aig
from repro.logic.bdd import BddManager
from repro.logic.collapse import bdd_to_truth_table, collapse_to_bdd
from repro.logic.truth_table import TruthTable
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.embedding import EmbeddedFunction, optimum_embedding
from repro.reversible.tbs import synthesize_permutation_masks

__all__ = ["symbolic_tbs"]


def _annotated_circuit(
    embedding: EmbeddedFunction, name: str
) -> ReversibleCircuit:
    """An empty circuit with input/constant/output/garbage roles attached."""
    result = ReversibleCircuit(name)
    output_of_line = {line: j for j, line in enumerate(embedding.output_lines)}
    for line in range(embedding.num_lines):
        input_index = (
            embedding.input_lines.index(line) if line in embedding.input_lines else None
        )
        constant = embedding.constant_lines.get(line)
        result.add_line(
            name=f"x{input_index}" if input_index is not None else f"a{line}",
            input_index=input_index,
            constant=constant,
        )
    for line in range(embedding.num_lines):
        if line in output_of_line:
            result.set_output(line, output_of_line[line])
        else:
            result.set_garbage(line)
    return result


def symbolic_tbs(
    spec: Union[TruthTable, EmbeddedFunction, Aig],
    bidirectional: bool = True,
    name: str = "symbolic_tbs",
) -> ReversibleCircuit:
    """Synthesise a line-optimal reversible circuit for ``spec``.

    ``spec`` may be

    * an :class:`~repro.logic.aig.Aig` — it is collapsed into a BDD and then
      into an explicit function (mirroring ABC's ``collapse`` step of the
      flow),
    * a :class:`~repro.logic.truth_table.TruthTable` — an optimum embedding
      is computed first,
    * an :class:`~repro.reversible.embedding.EmbeddedFunction` — used as-is.

    The returned circuit applies the function in place: the inputs are not
    preserved (they are overwritten by garbage/outputs), matching the
    behaviour described in Section IV-A.
    """
    if isinstance(spec, Aig):
        manager, roots = collapse_to_bdd(spec)
        spec = bdd_to_truth_table(manager, roots)
    if isinstance(spec, TruthTable):
        spec = optimum_embedding(spec)
    if not isinstance(spec, EmbeddedFunction):
        raise TypeError(f"unsupported specification type {type(spec)!r}")

    masks = synthesize_permutation_masks(
        spec.permutation, spec.num_lines, bidirectional=bidirectional
    )
    # The annotated lines exist before the cascade is appended, so the
    # all-positive TBS gates land in the columnar store mask-natively (no
    # per-gate objects, no second circuit to re-extend).
    circuit = _annotated_circuit(spec, name)
    circuit.extend_masks((mask, mask, target) for mask, target in masks)
    return circuit
